//! The joint pipeline configuration space shared by the search-based
//! systems (AutoSklearn, TPOT, CAML).
//!
//! A single flat [`ConfigSpace`] covers the model-family choice, the
//! preprocessor choices, and every family's hyperparameters (parameters of
//! non-selected families are simply inactive — the standard flat encoding
//! SMAC-style optimisers use). The numeric ranges live in [`Bounds`], which
//! is exactly the surface CAML's development-stage tuner adjusts
//! (paper §3.7 / Table 5).

use green_automl_ml::{
    ForestParams, GbParams, KnnParams, LogisticParams, MlpParams, ModelSpec, Pipeline, PreprocSpec,
    SvmParams, TreeParams,
};
use green_automl_optim::{Config, ConfigSpace};

/// A selectable model family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// CART decision tree.
    DecisionTree,
    /// Random forest.
    RandomForest,
    /// Extremely randomised trees.
    ExtraTrees,
    /// Gradient boosting.
    GradientBoosting,
    /// k-nearest neighbours.
    Knn,
    /// Logistic regression.
    Logistic,
    /// Linear SVM.
    LinearSvm,
    /// Gaussian naive Bayes.
    GaussianNb,
    /// Multi-layer perceptron.
    Mlp,
}

impl Family {
    /// Display name matching `ModelSpec::family()`.
    pub fn name(&self) -> &'static str {
        match self {
            Family::DecisionTree => "decision_tree",
            Family::RandomForest => "random_forest",
            Family::ExtraTrees => "extra_trees",
            Family::GradientBoosting => "gradient_boosting",
            Family::Knn => "knn",
            Family::Logistic => "logistic_regression",
            Family::LinearSvm => "linear_svm",
            Family::GaussianNb => "gaussian_nb",
            Family::Mlp => "mlp",
        }
    }

    /// Every searchable family (TabPFN's attention model is not searched —
    /// it has no training hyperparameters by design).
    pub fn all() -> Vec<Family> {
        vec![
            Family::DecisionTree,
            Family::RandomForest,
            Family::ExtraTrees,
            Family::GradientBoosting,
            Family::Knn,
            Family::Logistic,
            Family::LinearSvm,
            Family::GaussianNb,
            Family::Mlp,
        ]
    }
}

/// Numeric hyperparameter ranges — the tunable part of CAML's search-space
/// definition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bounds {
    /// Tree depth range.
    pub depth: (i64, i64),
    /// Forest size range.
    pub n_trees: (i64, i64),
    /// Boosting round range.
    pub gb_rounds: (i64, i64),
    /// Learning-rate range (log-scaled).
    pub learning_rate: (f64, f64),
    /// k-NN neighbour range.
    pub knn_k: (i64, i64),
    /// MLP hidden width range (log-scaled).
    pub mlp_hidden: (i64, i64),
    /// SGD epoch range.
    pub epochs: (i64, i64),
    /// Boosting row-subsample range.
    pub subsample: (f64, f64),
    /// Per-node feature-fraction range.
    pub max_feat_frac: (f64, f64),
    /// L2 regularisation range (log-scaled).
    pub l2: (f64, f64),
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds {
            depth: (2, 18),
            n_trees: (4, 96),
            gb_rounds: (5, 60),
            learning_rate: (5e-3, 0.5),
            knn_k: (1, 25),
            mlp_hidden: (8, 96),
            epochs: (5, 45),
            subsample: (0.5, 1.0),
            max_feat_frac: (0.1, 1.0),
            l2: (1e-6, 1e-1),
        }
    }
}

/// Which preprocessors the space may insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreprocChoices {
    /// Allow scaler selection (none / standard / min-max) — "data
    /// preprocessors" in the paper's Table 1.
    pub scalers: bool,
    /// Allow feature preprocessors (select-k-best / PCA) — present in
    /// ASKL's space, absent from CAML's (paper §2.3 (1)).
    pub feature_preprocs: bool,
}

/// The assembled space: spec + [`ConfigSpace`] + decoding indices.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSpace {
    families: Vec<Family>,
    choices: PreprocChoices,
    bounds: Bounds,
    space: ConfigSpace,
}

/// Parameter indices (fixed layout; family-irrelevant entries are inactive).
mod idx {
    pub const FAMILY: usize = 0;
    pub const SCALER: usize = 1;
    pub const FEAT_PRE: usize = 2;
    pub const FEAT_FRAC: usize = 3;
    pub const DEPTH: usize = 4;
    pub const N_TREES: usize = 5;
    pub const GB_ROUNDS: usize = 6;
    pub const LR: usize = 7;
    pub const KNN_K: usize = 8;
    pub const HIDDEN: usize = 9;
    pub const EPOCHS: usize = 10;
    pub const SUBSAMPLE: usize = 11;
    pub const MAX_FEAT: usize = 12;
    pub const L2: usize = 13;
}

impl PipelineSpace {
    /// Build the space for the given families, preprocessor choices, and
    /// bounds.
    ///
    /// # Panics
    /// Panics if `families` is empty.
    pub fn new(families: Vec<Family>, choices: PreprocChoices, bounds: Bounds) -> PipelineSpace {
        assert!(!families.is_empty(), "need at least one model family");
        let space = ConfigSpace::new()
            .add_cat("family", families.len())
            .add_cat("scaler", if choices.scalers { 3 } else { 1 })
            .add_cat(
                "feature_preproc",
                if choices.feature_preprocs { 3 } else { 1 },
            )
            .add_float("feature_frac", 0.1, 1.0, false)
            .add_int("depth", bounds.depth.0, bounds.depth.1, false)
            .add_int("n_trees", bounds.n_trees.0, bounds.n_trees.1, true)
            .add_int("gb_rounds", bounds.gb_rounds.0, bounds.gb_rounds.1, true)
            .add_float(
                "learning_rate",
                bounds.learning_rate.0,
                bounds.learning_rate.1,
                true,
            )
            .add_int("knn_k", bounds.knn_k.0, bounds.knn_k.1, false)
            .add_int("mlp_hidden", bounds.mlp_hidden.0, bounds.mlp_hidden.1, true)
            .add_int("epochs", bounds.epochs.0, bounds.epochs.1, false)
            .add_float("subsample", bounds.subsample.0, bounds.subsample.1, false)
            .add_float(
                "max_feat_frac",
                bounds.max_feat_frac.0,
                bounds.max_feat_frac.1,
                false,
            )
            .add_float("l2", bounds.l2.0, bounds.l2.1, true);
        PipelineSpace {
            families,
            choices,
            bounds,
            space,
        }
    }

    /// The ASKL space: every family, scalers, and feature preprocessors.
    pub fn askl() -> PipelineSpace {
        PipelineSpace::new(
            Family::all(),
            PreprocChoices {
                scalers: true,
                feature_preprocs: true,
            },
            Bounds::default(),
        )
    }

    /// The CAML space: every family and scalers, but no feature
    /// preprocessors (paper §2.3: "CAML supports the same space without the
    /// feature preprocessors").
    pub fn caml() -> PipelineSpace {
        PipelineSpace::new(
            Family::all(),
            PreprocChoices {
                scalers: true,
                feature_preprocs: false,
            },
            Bounds::default(),
        )
    }

    /// The underlying flat configuration space.
    pub fn space(&self) -> &ConfigSpace {
        &self.space
    }

    /// Families selectable in this space.
    pub fn families(&self) -> &[Family] {
        &self.families
    }

    /// Bounds in force.
    pub fn bounds(&self) -> &Bounds {
        &self.bounds
    }

    /// The family a configuration selects.
    pub fn family_of(&self, c: &Config) -> Family {
        self.families[c.cat(idx::FAMILY).min(self.families.len() - 1)]
    }

    /// Decode a configuration into an executable [`Pipeline`].
    pub fn decode(&self, c: &Config) -> Pipeline {
        let mut preprocs = Vec::new();
        if self.choices.scalers {
            match c.cat(idx::SCALER) {
                1 => preprocs.push(PreprocSpec::StandardScaler),
                2 => preprocs.push(PreprocSpec::MinMaxScaler),
                _ => {}
            }
        }
        if self.choices.feature_preprocs {
            let frac = c.float(idx::FEAT_FRAC).clamp(0.1, 1.0);
            match c.cat(idx::FEAT_PRE) {
                1 => preprocs.push(PreprocSpec::SelectKBest { frac }),
                2 => preprocs.push(PreprocSpec::Pca { frac }),
                _ => {}
            }
        }

        let depth = c.int(idx::DEPTH).max(1) as usize;
        let n_trees = c.int(idx::N_TREES).max(1) as usize;
        let max_feat = c.float(idx::MAX_FEAT).clamp(0.05, 1.0);
        let lr = c.float(idx::LR).max(1e-5);
        let epochs = c.int(idx::EPOCHS).max(1) as usize;
        let l2 = c.float(idx::L2).max(0.0);

        let model = match self.family_of(c) {
            Family::DecisionTree => ModelSpec::DecisionTree(TreeParams {
                max_depth: depth,
                max_features_frac: max_feat,
                ..Default::default()
            }),
            Family::RandomForest => {
                ModelSpec::RandomForest(forest_params(depth, n_trees, max_feat))
            }
            Family::ExtraTrees => ModelSpec::ExtraTrees(forest_params(depth, n_trees, max_feat)),
            Family::GradientBoosting => ModelSpec::GradientBoosting(GbParams {
                n_rounds: c.int(idx::GB_ROUNDS).max(1) as usize,
                learning_rate: lr,
                max_depth: depth.min(6),
                subsample: c.float(idx::SUBSAMPLE).clamp(0.3, 1.0),
            }),
            Family::Knn => ModelSpec::Knn(KnnParams {
                k: c.int(idx::KNN_K).max(1) as usize,
                ..Default::default()
            }),
            Family::Logistic => ModelSpec::Logistic(LogisticParams { epochs, lr, l2 }),
            Family::LinearSvm => ModelSpec::LinearSvm(SvmParams { epochs, lr, l2 }),
            Family::GaussianNb => ModelSpec::GaussianNb,
            Family::Mlp => ModelSpec::Mlp(MlpParams {
                hidden1: c.int(idx::HIDDEN).max(2) as usize,
                hidden2: 0,
                epochs,
                lr,
                batch: 32,
            }),
        };
        Pipeline::new(preprocs, model)
    }
}

fn forest_params(depth: usize, n_trees: usize, max_feat: f64) -> ForestParams {
    ForestParams {
        n_trees,
        tree: TreeParams {
            max_depth: depth,
            max_features_frac: max_feat,
            ..Default::default()
        },
        bootstrap: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use green_automl_energy::rng::SplitMix64;

    #[test]
    fn askl_space_is_wider_than_caml_space() {
        // Same parameter count (flat layout) but CAML's feature-preproc
        // axis is degenerate.
        let askl = PipelineSpace::askl();
        let caml = PipelineSpace::caml();
        assert_eq!(askl.space().len(), caml.space().len());
        let fp_askl = askl.space().params()[2].clone();
        let fp_caml = caml.space().params()[2].clone();
        assert_ne!(fp_askl.kind, fp_caml.kind);
    }

    #[test]
    fn every_sample_decodes_to_a_valid_pipeline() {
        let ps = PipelineSpace::askl();
        let mut rng = SplitMix64::seed_from_u64(0);
        let mut families = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let c = ps.space().sample(&mut rng);
            let p = ps.decode(&c);
            families.insert(p.model.family());
            assert!(!p.describe().is_empty());
        }
        // All nine families reachable.
        assert_eq!(families.len(), 9);
    }

    #[test]
    fn decoded_pipelines_respect_bounds() {
        let bounds = Bounds {
            depth: (3, 5),
            ..Default::default()
        };
        let ps = PipelineSpace::new(
            vec![Family::DecisionTree],
            PreprocChoices {
                scalers: false,
                feature_preprocs: false,
            },
            bounds,
        );
        let mut rng = SplitMix64::seed_from_u64(1);
        for _ in 0..50 {
            let c = ps.space().sample(&mut rng);
            match ps.decode(&c).model {
                ModelSpec::DecisionTree(t) => {
                    assert!((3..=5).contains(&t.max_depth), "depth {}", t.max_depth)
                }
                other => panic!("unexpected family {other:?}"),
            }
        }
    }

    #[test]
    fn restricted_family_set_only_yields_those_families() {
        let ps = PipelineSpace::new(
            vec![Family::GaussianNb, Family::Knn],
            PreprocChoices {
                scalers: true,
                feature_preprocs: false,
            },
            Bounds::default(),
        );
        let mut rng = SplitMix64::seed_from_u64(2);
        for _ in 0..50 {
            let c = ps.space().sample(&mut rng);
            let fam = ps.decode(&c).model.family();
            assert!(fam == "gaussian_nb" || fam == "knn", "got {fam}");
        }
    }

    #[test]
    fn fitted_decoded_pipeline_learns() {
        use green_automl_dataset::TaskSpec;
        use green_automl_energy::{CostTracker, Device};
        let ds = {
            let mut s = TaskSpec::new("d", 200, 6, 2);
            s.cluster_sep = 2.2;
            s.generate()
        };
        let ps = PipelineSpace::caml();
        let mut rng = SplitMix64::seed_from_u64(3);
        let mut t = CostTracker::new(Device::xeon_gold_6132(), 1);
        // Take a random config; any family must at least fit and predict.
        let c = ps.space().sample(&mut rng);
        let fitted = ps.decode(&c).fit(&ds, &mut t, 0);
        let pred = fitted.predict(&ds, &mut t);
        assert_eq!(pred.len(), 200);
    }
}
