//! TabPFN 0.1.9 — few-shot AutoML: no search space, no initialisation, no
//! search (paper Table 1 shows "-" in every stage but ensembling). Fitting
//! loads a frozen meta-trained transformer and memorises the training data;
//! every prediction forward-passes that data through the network.
//!
//! Limits of the official implementation are reproduced: at most 10 classes
//! (beyond which the system falls back to a majority-class predictor —
//! the cause of TabPFN's low average balanced accuracy in Fig. 3) and
//! at most 1 000 in-context training instances.

use crate::id::SystemId;
use crate::system::{
    execution_tracker, majority_class_predictor, AutoMlRun, AutoMlSystem, DesignCard, FaultState,
    FitContext, Predictor, RunSpec,
};
use green_automl_dataset::Dataset;
use green_automl_energy::SpanKind;
use green_automl_ml::validation::fit_scoped;
use green_automl_ml::{AttentionParams, ModelSpec, Pipeline};

/// The TabPFN simulator.
#[derive(Debug, Clone)]
pub struct TabPfn {
    /// Parameters of the in-context attention model.
    pub params: AttentionParams,
    /// Class cap of the official implementation.
    pub max_classes: usize,
}

impl Default for TabPfn {
    fn default() -> Self {
        TabPfn {
            params: AttentionParams::default(),
            max_classes: 10,
        }
    }
}

impl AutoMlSystem for TabPfn {
    fn name(&self) -> &'static str {
        "TabPFN"
    }

    fn id(&self) -> SystemId {
        SystemId::TabPfn
    }

    fn design(&self) -> DesignCard {
        DesignCard {
            system: SystemId::TabPfn,
            search_space: "-",
            search_init: "-",
            search: "-",
            ensembling: "unweighted ensemble",
        }
    }

    fn budget_free(&self) -> bool {
        true
    }

    fn fit_with(&self, train: &Dataset, spec: &RunSpec, ctx: &FitContext<'_>) -> AutoMlRun {
        let mut tracker = execution_tracker(self.id(), spec);
        let scope = ctx.scope(train, &tracker);
        if train.n_classes > self.max_classes {
            // The official implementation "only supports up to 10 classes";
            // the benchmark then falls back to the majority class.
            // Even the refusal costs the checkpoint load.
            tracker.span_open(SpanKind::Trial, || "refusal".to_string());
            tracker.charge(
                green_automl_energy::OpCounts::mem(1.0e8),
                green_automl_energy::ParallelProfile::serial(),
            );
            tracker.span_close();
            return AutoMlRun {
                predictor: majority_class_predictor(train),
                execution: tracker.measurement(),
                n_evaluations: 0,
                budget_s: spec.budget_s,
                n_trial_faults: 0,
                wasted_j: 0.0,
                trace: tracker.take_trace(),
            };
        }

        // TabPFN's single "trial" is the in-context fit itself. The wasted-
        // work estimate is the system's fixed ~0.3 s execution (Table 7),
        // not a budget fraction — TabPFN is budget-free, so its fault cost
        // must not scale with the nominal budget either.
        let mut faults = FaultState::with_trial_estimate(self.id(), spec, 0.3);
        tracker.span_open(SpanKind::Trial, || "trial 0".to_string());
        if let Some(fault) = faults.next_trial() {
            faults.charge(&mut tracker, fault);
            tracker.span_close_fault(fault.kind);
            return AutoMlRun {
                predictor: majority_class_predictor(train),
                execution: tracker.measurement(),
                n_evaluations: 0,
                budget_s: spec.budget_s,
                n_trial_faults: faults.n_faults(),
                wasted_j: faults.wasted_j(),
                trace: tracker.take_trace(),
            };
        }

        let trial_start = tracker.now();
        let fitted = fit_scoped(
            &Pipeline::new(vec![], ModelSpec::InContextAttention(self.params)),
            train,
            &[],
            spec.seed,
            &mut tracker,
            scope.as_ref(),
        );
        faults.observe_ok(tracker.now() - trial_start);
        tracker.span_close();
        AutoMlRun {
            predictor: Predictor::Single(fitted),
            execution: tracker.measurement(),
            n_evaluations: 1,
            budget_s: spec.budget_s,
            n_trial_faults: faults.n_faults(),
            wasted_j: faults.wasted_j(),
            trace: tracker.take_trace(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use green_automl_dataset::split::train_test_split;
    use green_automl_dataset::TaskSpec;
    use green_automl_energy::{CostTracker, Device};
    use green_automl_ml::metrics::balanced_accuracy;

    fn task(classes: usize) -> Dataset {
        let mut s = TaskSpec::new("pfn-t", 260, 6, classes);
        s.cluster_sep = 2.2;
        s.generate()
    }

    #[test]
    fn execution_ignores_the_budget_and_is_fast() {
        let train = task(2);
        let short = TabPfn::default().fit(&train, &RunSpec::single_core(10.0, 0));
        let long = TabPfn::default().fit(&train, &RunSpec::single_core(300.0, 0));
        // Same execution time regardless of budget (Table 7: 0.29 s at
        // every setting), well under a virtual second.
        assert!((short.execution.duration_s - long.execution.duration_s).abs() < 1e-9);
        assert!(short.execution.duration_s < 2.0);
        assert!(TabPfn::default().budget_free());
    }

    #[test]
    fn learns_small_binary_tasks() {
        let ds = task(2);
        let (train, test) = train_test_split(&ds, 0.34, 0);
        let run = TabPfn::default().fit(&train, &RunSpec::single_core(10.0, 0));
        let mut t = CostTracker::new(Device::xeon_gold_6132(), 1);
        let pred = run.predictor.predict(&test, &mut t);
        let bal = balanced_accuracy(&test.labels, &pred, 2);
        assert!(bal > 0.65, "balanced accuracy {bal}");
    }

    #[test]
    fn refuses_more_than_ten_classes() {
        let train = task(12);
        let run = TabPfn::default().fit(&train, &RunSpec::single_core(10.0, 0));
        assert!(matches!(run.predictor, Predictor::Constant { .. }));
        assert_eq!(run.n_evaluations, 0);
    }

    #[test]
    fn inference_energy_is_orders_above_flaml() {
        // The headline asymmetry: TabPFN's per-prediction energy dwarfs a
        // single small model's (paper Fig. 3 right / Table 4).
        let ds = task(2);
        let (train, _) = train_test_split(&ds, 0.34, 0);
        let spec = RunSpec::single_core(30.0, 0);
        let pfn = TabPfn::default().fit(&train, &spec);
        let flaml = crate::flaml::Flaml::default().fit(&train, &spec);
        let dev = Device::xeon_gold_6132();
        let ratio = pfn.predictor.inference_kwh_per_row(dev, 1)
            / flaml.predictor.inference_kwh_per_row(dev, 1);
        assert!(ratio > 20.0, "TabPFN/FLAML inference ratio {ratio:.0}x");
    }

    #[test]
    fn execution_energy_is_least_among_systems() {
        let ds = task(2);
        let (train, _) = train_test_split(&ds, 0.34, 0);
        let spec = RunSpec::single_core(30.0, 0);
        let pfn = TabPfn::default().fit(&train, &spec);
        let flaml = crate::flaml::Flaml::default().fit(&train, &spec);
        assert!(
            pfn.execution.kwh() < flaml.execution.kwh() / 10.0,
            "TabPFN execution {:.3e} kWh should be far below FLAML {:.3e} kWh",
            pfn.execution.kwh(),
            flaml.execution.kwh()
        );
    }
}
