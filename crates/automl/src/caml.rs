//! CAML (Neutatz, Lindauer & Abedjan, VLDB J. 2023) — constraint-aware
//! AutoML: Bayesian optimisation with random initialisation, successive-
//! halving-style incremental training, optional validation-split
//! resampling, and ML-application constraints (inference time) as
//! first-class citizens.
//!
//! CAML is the paper's vehicle for the development stage (§2.5/§3.7): its
//! AutoML-system parameters — search-space composition, hold-out fraction,
//! evaluation fraction, sampling, refit, validation resampling, incremental
//! training — are all exposed in [`CamlParams`] so the meta-tuner can
//! optimise them per search budget (Table 5). CAML "strictly adheres to the
//! search time" (Table 7) and "searches always until the search budget is
//! exhausted" (§3.2.1).

use crate::id::SystemId;
use crate::pipespace::{Bounds, Family, PipelineSpace, PreprocChoices};
use crate::system::{
    execution_tracker, majority_class_predictor, AutoMlRun, AutoMlSystem, DesignCard, FaultState,
    FitContext, Predictor, RunSpec,
};
use green_automl_dataset::split::train_test_split;
use green_automl_dataset::Dataset;
use green_automl_energy::{CostTracker, ParallelProfile, SpanKind};
use green_automl_ml::evalcache::{self, kind, CachedValue};
use green_automl_ml::metrics::balanced_accuracy;
use green_automl_ml::validation::fit_scoped;
use green_automl_ml::FittedPipeline;
use green_automl_optim::BayesOpt;

/// CAML's tunable AutoML-system parameters: the search-space definition
/// plus the six system parameters enumerated in the paper's §3.7.
#[derive(Debug, Clone, PartialEq)]
pub struct CamlParams {
    /// Included model families (search-space pruning — Table 5 shows tuned
    /// spaces keep only a few families at small budgets).
    pub families: Vec<Family>,
    /// Whether scaler choice is part of the space.
    pub scalers: bool,
    /// Numeric hyperparameter ranges.
    pub bounds: Bounds,
    /// ① Hold-out validation fraction.
    pub holdout_frac: f64,
    /// ② Evaluation fraction: the maximum share of the budget before a
    /// single evaluation is stopped.
    pub eval_fraction: f64,
    /// ③ Sampling: fraction of training instances used for the whole run.
    pub sampling_frac: f64,
    /// ④ Refit the winner on the merged training + validation data.
    pub refit: bool,
    /// ⑤ Random validation-set re-splitting per BO iteration.
    pub resample_validation: bool,
    /// ⑥ Incremental training (successive-halving-style sample growth
    /// inside each evaluation).
    pub incremental_training: bool,
    /// Extension (paper §3.8): stop the search once the incumbent has not
    /// improved for this many consecutive evaluations, instead of burning
    /// the rest of the budget — "especially for smaller datasets, early
    /// stopping should be enforced to save energy". `None` reproduces the
    /// paper's measured behaviour (search until the budget is exhausted).
    pub early_stop_patience: Option<usize>,
    /// Extension (paper §1: "we can incorporate this constraint in the
    /// objective function [47]"): weight of the inference-energy penalty in
    /// the search objective, `score − weight · (kWh/prediction · 1e9)`.
    /// `0` reproduces the paper's accuracy-only objective.
    pub energy_weight: f64,
}

impl Default for CamlParams {
    fn default() -> Self {
        CamlParams {
            families: Family::all(),
            scalers: true,
            bounds: Bounds::default(),
            holdout_frac: 0.33,
            eval_fraction: 0.1,
            sampling_frac: 1.0,
            refit: false,
            resample_validation: false,
            incremental_training: true,
            early_stop_patience: None,
            energy_weight: 0.0,
        }
    }
}

impl CamlParams {
    /// Count of independently tunable entries this struct exposes to the
    /// development-stage tuner (family flags + scaler flag + bound
    /// endpoints + the six system parameters).
    pub fn n_tunable() -> usize {
        9  // family inclusion flags
        + 1  // scaler flag
        + 10 * 2 // Bounds endpoints
        + 6 // system parameters
    }
}

/// The CAML simulator.
#[derive(Debug, Clone, Default)]
pub struct Caml {
    /// System parameters (defaults reproduce the paper's untuned CAML).
    pub params: CamlParams,
    /// Marks the tuned variant for display purposes.
    pub tuned: bool,
}

impl Caml {
    /// The development-stage-tuned variant (paper's "CAML(tuned)").
    pub fn tuned(params: CamlParams) -> Caml {
        Caml {
            params,
            tuned: true,
        }
    }
}

struct BestEval {
    pipeline: green_automl_ml::Pipeline,
    score: f64,
}

impl AutoMlSystem for Caml {
    fn name(&self) -> &'static str {
        if self.tuned {
            "CAML(tuned)"
        } else {
            "CAML"
        }
    }

    fn design(&self) -> DesignCard {
        DesignCard {
            system: SystemId::Caml,
            search_space: "data p. & models",
            search_init: "random",
            search: "BO & successive halving",
            ensembling: "-",
        }
    }

    fn fit_with(&self, train: &Dataset, spec: &RunSpec, ctx: &FitContext<'_>) -> AutoMlRun {
        let p = &self.params;
        // The tuned variant keeps its own id (`Custom("CAML(tuned)")` via
        // the trait default) so its fault stream stays distinct.
        let mut tracker = execution_tracker(self.id(), spec);
        let scope = ctx.scope(train, &tracker);

        // ③ Upfront sampling. `keep_word` records the derivation from the
        // scope's training set for memo keys (`u64::MAX` = no sampling).
        let sampled;
        let mut keep_word = u64::MAX;
        let data = if p.sampling_frac < 1.0 {
            let keep = ((train.n_rows() as f64 * p.sampling_frac) as usize)
                .max(train.n_classes * 2)
                .min(train.n_rows());
            keep_word = keep as u64;
            sampled = train.head(keep);
            &sampled
        } else {
            train
        };

        let space = PipelineSpace::new(
            p.families.clone(),
            PreprocChoices {
                scalers: p.scalers,
                feature_preprocs: false,
            },
            p.bounds,
        );
        let mut bo = BayesOpt::new(space.space().clone(), spec.seed);
        bo.n_init = 10; // "CAML first evaluates 10 random ML pipelines"

        let eval_cap = ((spec.budget_s * 0.4) as usize).clamp(8, 120);
        let mut best: Option<BestEval> = None;
        let mut n_evaluations = 0usize;
        let mut stall = 0usize;
        let mut stopped_early = false;
        let mut faults = FaultState::new(self.id(), spec);
        let holdout = p.holdout_frac.clamp(0.1, 0.5);
        let (tr_fixed, val_fixed) = train_test_split(data, holdout, spec.seed ^ 0xca31);

        while tracker.now() < spec.budget_s && n_evaluations < eval_cap {
            let (config, ops) = bo.suggest();
            tracker.charge(ops, ParallelProfile::serial());
            tracker.span_open(SpanKind::Trial, || {
                format!("trial {}", faults.trials_started())
            });
            // Injected fault: the evaluation process dies. Burn the wasted
            // partial work, score the config as failed for BO, move on.
            if let Some(fault) = faults.next_trial() {
                faults.charge(&mut tracker, fault);
                bo.observe(config, 0.0);
                tracker.span_close_fault(fault.kind);
                continue;
            }
            let trial_start = tracker.now();
            let pipeline = space.decode(&config);

            // ⑤ Validation resampling.
            let resplit;
            let split_seed = if p.resample_validation {
                spec.seed ^ 0xca31 ^ (n_evaluations as u64 + 1)
            } else {
                spec.seed ^ 0xca31
            };
            let (tr, val) = if p.resample_validation {
                resplit = train_test_split(data, holdout, split_seed);
                (&resplit.0, &resplit.1)
            } else {
                (&tr_fixed, &val_fixed)
            };

            let eval_deadline = tracker.now() + p.eval_fraction.clamp(0.01, 1.0) * spec.budget_s;

            // ⑥ Incremental training ladder (10 instances per class, then
            // x4 per rung), pruning poor pipelines — and pipelines that
            // violate the inference-time constraint — at the cheapest rung.
            // The first rung shrinks until its *estimated* cost fits the
            // per-evaluation window, and later rungs only start if they are
            // estimated to fit — CAML's strict budget adherence (Table 7)
            // even on heavily charged datasets.
            let eval_budget = p.eval_fraction.clamp(0.01, 1.0) * spec.budget_s;
            let d_enc = green_automl_ml::matrix::encoded_width(tr);
            let rung_fits = |n: usize| {
                pipeline.model.estimate_fit_seconds(
                    n,
                    d_enc,
                    val.n_classes,
                    tr.scale(),
                    spec.device,
                    spec.cores,
                ) <= eval_budget
            };
            let fidelities: Vec<usize> = if p.incremental_training {
                let floor = (2 * val.n_classes).max(8).min(tr.n_rows());
                let mut n = (10 * val.n_classes).min(tr.n_rows());
                while n > floor && !rung_fits(n) {
                    n = (n / 2).max(floor);
                }
                let mut ladder = vec![n];
                while n < tr.n_rows() && rung_fits((n * 4).min(tr.n_rows())) {
                    n = (n * 4).min(tr.n_rows());
                    ladder.push(n);
                }
                ladder
            } else {
                vec![tr.n_rows()]
            };

            let mut rung_fit: Option<(f64, FittedPipeline)> = None;
            for (rung, &n_rows) in fidelities.iter().enumerate() {
                // Strict budget adherence: never start a rung past the
                // budget (Table 7: CAML 301.4s for a 300s budget).
                if rung > 0 && tracker.now() >= spec.budget_s {
                    break;
                }
                let sub = tr.head(n_rows);
                let eval_seed = spec.seed ^ n_evaluations as u64;
                let limit = spec.constraints.max_inference_s_per_row;
                // One rung = fit + early constraint check + validation
                // scoring (successive halving "prunes ML pipelines that
                // violate constraints"). A constraint-pruned rung still
                // burned its fit energy, so it memoises as `Skipped` with
                // the recorded charges; the limit is part of the key.
                let rung_unit = |t: &mut CostTracker| {
                    let fitted = pipeline.fit(&sub, t, eval_seed);
                    if let Some(limit) = limit {
                        let per_row = fitted.inference_seconds_per_row(spec.device, spec.cores);
                        if per_row > limit {
                            return CachedValue::Skipped;
                        }
                    }
                    let pred = fitted.predict(val, t);
                    let score = balanced_accuracy(&val.labels, &pred, val.n_classes);
                    CachedValue::Scored { score, fitted }
                };
                let outcome = match scope.as_ref() {
                    None => rung_unit(&mut tracker),
                    Some(sc) => {
                        let key = sc.key(
                            kind::RUNG,
                            evalcache::fingerprint_pipeline(&pipeline),
                            &[
                                eval_seed,
                                keep_word,
                                split_seed,
                                holdout.to_bits(),
                                limit.map_or(0, |_| 1),
                                limit.map_or(0, f64::to_bits),
                            ],
                            n_rows as u64,
                        );
                        sc.cache().get_or_compute(key, &mut tracker, rung_unit)
                    }
                };
                let (score, fitted) = match outcome {
                    CachedValue::Scored { score, fitted } => (score, fitted),
                    CachedValue::Skipped => {
                        rung_fit = None;
                        break;
                    }
                    other => unreachable!("rung unit stored {other:?}"),
                };
                rung_fit = Some((score, fitted));

                // Prune pipelines that are clearly losing at low fidelity.
                if rung + 1 < fidelities.len() {
                    if let Some(b) = &best {
                        if score < b.score * 0.7 {
                            break;
                        }
                    }
                }
                // ② Evaluation fraction: stop when the per-eval budget is
                // spent.
                if tracker.now() > eval_deadline {
                    break;
                }
            }

            let score = match rung_fit {
                Some((score, fitted)) => {
                    // Energy-aware objective (extension): penalise costly
                    // inference so Pareto-cheaper pipelines win ties.
                    let adjusted = if p.energy_weight > 0.0 {
                        let mut probe = CostTracker::new(spec.device, spec.cores);
                        probe.charge(
                            fitted.inference_ops_per_row(),
                            green_automl_energy::ParallelProfile::batch_inference(),
                        );
                        score - p.energy_weight * probe.measurement().kwh() * 1e9
                    } else {
                        score
                    };
                    if best.as_ref().is_none_or(|b| adjusted > b.score) {
                        best = Some(BestEval {
                            pipeline: pipeline.clone(),
                            score: adjusted,
                        });
                        stall = 0;
                    } else {
                        stall += 1;
                    }
                    adjusted
                }
                None => {
                    stall += 1;
                    0.0 // constraint violation
                }
            };
            bo.observe(config, score);
            faults.observe_ok(tracker.now() - trial_start);
            tracker.span_close();
            n_evaluations += 1;
            if let Some(patience) = p.early_stop_patience {
                if stall >= patience {
                    stopped_early = true;
                    break;
                }
            }
        }

        // Every started evaluation was killed by a fault: nothing was ever
        // scored, so deploy the constant-class fallback (still consuming the
        // budget — CAML holds its allocation either way).
        if best.is_none() && faults.n_faults() > 0 {
            if !stopped_early {
                crate::system::burn_active_until(&mut tracker, spec.budget_s);
            }
            return AutoMlRun {
                predictor: majority_class_predictor(train),
                execution: tracker.measurement(),
                n_evaluations,
                budget_s: spec.budget_s,
                n_trial_faults: faults.n_faults(),
                wasted_j: faults.wasted_j(),
                trace: tracker.take_trace(),
            };
        }

        let winner = best.map(|b| b.pipeline).unwrap_or_else(|| {
            // No pipeline satisfied the constraints: fall back to the
            // cheapest possible model.
            green_automl_ml::Pipeline::new(vec![], green_automl_ml::ModelSpec::GaussianNb)
        });

        // Final training of the winner: on the training part only, or — ④
        // refit — on the merged training + validation data. The sample is
        // capped to what a reserved 20% budget slice can afford, preserving
        // strict adherence on heavily charged datasets.
        tracker.span_open(SpanKind::Trial, || "refit".to_string());
        let final_data = if p.refit { data } else { &tr_fixed };
        let final_budget = 0.2 * spec.budget_s;
        let d_enc = green_automl_ml::matrix::encoded_width(final_data);
        let mut n_final = final_data.n_rows();
        let floor = (2 * final_data.n_classes).max(8).min(final_data.n_rows());
        while n_final > floor
            && winner.model.estimate_fit_seconds(
                n_final,
                d_enc,
                final_data.n_classes,
                final_data.scale(),
                spec.device,
                spec.cores,
            ) > final_budget
        {
            n_final = (n_final / 2).max(floor);
        }
        let final_sub;
        let final_ref = if n_final < final_data.n_rows() {
            final_sub = final_data.head(n_final);
            &final_sub
        } else {
            final_data
        };
        let mut deployed = fit_scoped(
            &winner,
            final_ref,
            &[
                keep_word,
                p.refit as u64,
                spec.seed ^ 0xca31,
                holdout.to_bits(),
            ],
            spec.seed ^ 0xf17,
            &mut tracker,
            scope.as_ref(),
        );
        // A refit on more data may nudge a model past the inference limit
        // (e.g. k-NN stores more rows); fall back to the training-part fit.
        if let Some(limit) = spec.constraints.max_inference_s_per_row {
            if deployed.inference_seconds_per_row(spec.device, spec.cores) > limit {
                let shrunk = final_ref.head((final_ref.n_rows() / 2).max(floor));
                deployed = deployed
                    .spec()
                    .clone()
                    .fit(&shrunk, &mut tracker, spec.seed ^ 0xf18);
            }
        }
        tracker.span_close();

        // CAML holds its allocation and keeps searching until the budget is
        // fully consumed (the final fit above happens within the window) —
        // unless the early-stopping extension fired, in which case the
        // remaining budget is the energy saved.
        if !stopped_early {
            crate::system::burn_active_until(&mut tracker, spec.budget_s);
        }

        AutoMlRun {
            predictor: Predictor::Single(deployed),
            execution: tracker.measurement(),
            n_evaluations,
            budget_s: spec.budget_s,
            n_trial_faults: faults.n_faults(),
            wasted_j: faults.wasted_j(),
            trace: tracker.take_trace(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::Constraints;
    use green_automl_dataset::split::train_test_split as tts;
    use green_automl_dataset::TaskSpec;
    use green_automl_energy::Device;

    fn task() -> Dataset {
        let mut s = TaskSpec::new("caml-t", 260, 6, 2);
        s.cluster_sep = 2.1;
        s.generate().with_scales(8.0, 1.0)
    }

    #[test]
    fn adheres_strictly_to_the_budget() {
        let train = task();
        for budget in [10.0, 30.0] {
            let run = Caml::default().fit(&train, &RunSpec::single_core(budget, 0));
            let ratio = run.overshoot_ratio();
            // Table 7: 10.47 +- 0.05 for 10 s => within ~10%.
            assert!(
                (1.0..1.15).contains(&ratio),
                "budget {budget}: overshoot ratio {ratio:.3}"
            );
        }
    }

    #[test]
    fn uses_the_full_budget() {
        let train = task();
        let run = Caml::default().fit(&train, &RunSpec::single_core(30.0, 1));
        assert!(run.execution.duration_s >= 30.0);
    }

    #[test]
    fn single_model_learns() {
        let ds = task();
        let (train, test) = tts(&ds, 0.34, 0);
        let run = Caml::default().fit(&train, &RunSpec::single_core(120.0, 2));
        assert_eq!(run.predictor.n_models(), 1);
        let mut t = CostTracker::new(Device::xeon_gold_6132(), 1);
        let pred = run.predictor.predict(&test, &mut t);
        let bal = balanced_accuracy(&test.labels, &pred, 2);
        assert!(bal > 0.7, "balanced accuracy {bal}");
    }

    #[test]
    fn inference_constraint_is_respected() {
        let ds = task();
        let (train, _) = tts(&ds, 0.34, 0);
        let dev = Device::xeon_gold_6132();
        let mut spec = RunSpec::single_core(30.0, 3);
        let unconstrained = Caml::default().fit(&train, &spec);
        let free_cost = unconstrained.predictor.inference_s_per_row(dev, 1);

        // Constrain to a fraction of the unconstrained pipeline's latency,
        // but never below the framework-dispatch floor every pipeline pays.
        let mut floor_probe = CostTracker::new(dev, 1);
        let floor_pipe = green_automl_ml::Pipeline::new(
            vec![],
            green_automl_ml::ModelSpec::GaussianNb,
        )
        .fit(&train, &mut floor_probe, 0);
        let floor = floor_pipe.inference_seconds_per_row(dev, 1);
        let limit = (free_cost * 0.5).max(floor * 1.3);
        spec.constraints = Constraints {
            max_inference_s_per_row: Some(limit),
        };
        let constrained = Caml::default().fit(&train, &spec);
        let got = constrained.predictor.inference_s_per_row(dev, 1);
        assert!(
            got <= limit * 1.01,
            "constrained latency {got:.3e} exceeds limit {limit:.3e}"
        );
    }

    #[test]
    fn tighter_constraints_save_inference_energy() {
        // Paper Fig. 6: lowering the inference-time limit cuts energy at
        // some accuracy cost.
        let ds = task();
        let (train, _) = tts(&ds, 0.34, 0);
        let dev = Device::xeon_gold_6132();
        let run = |limit: Option<f64>| {
            let mut spec = RunSpec::single_core(30.0, 4);
            spec.constraints = Constraints {
                max_inference_s_per_row: limit,
            };
            Caml::default()
                .fit(&train, &spec)
                .predictor
                .inference_kwh_per_row(dev, 1)
        };
        let free = run(None);
        let tight = run(Some(free / 3.0 * 1e5)); // generous limit, sanity
        let very_tight = run(Some(1e-7));
        // The fallback model may differ from the free winner by the cost of
        // its (tiny) scoring arithmetic; allow that epsilon.
        assert!(
            very_tight <= free * 1.05,
            "constraint should not raise energy: {very_tight:.3e} vs {free:.3e}"
        );
        let _ = tight;
    }

    #[test]
    fn sampling_and_refit_parameters_apply() {
        let train = task();
        let mut params = CamlParams {
            sampling_frac: 0.3,
            refit: true,
            resample_validation: true,
            incremental_training: false,
            ..Default::default()
        };
        params.families = vec![Family::DecisionTree, Family::GaussianNb];
        let run = Caml::tuned(params).fit(&train, &RunSpec::single_core(10.0, 5));
        assert_eq!(run.predictor.n_models(), 1);
        assert!(run.n_evaluations >= 1);
    }

    #[test]
    fn tunable_surface_is_documented() {
        // 9 + 1 + 20 + 6 entries — the simulator's analogue of the paper's
        // 192-parameter surface (see EXPERIMENTS.md for the mapping).
        assert_eq!(CamlParams::n_tunable(), 36);
    }

    #[test]
    fn tuned_variant_reports_its_name() {
        assert_eq!(Caml::default().name(), "CAML");
        assert_eq!(Caml::tuned(CamlParams::default()).name(), "CAML(tuned)");
    }
}
