//! FLAML 1.2.4 — cost-frugal AutoML: start from very low-cost models on
//! small samples and escalate complexity only when it pays (paper §2.2:
//! "they start by evaluating low-cost models, e.g. a random forest with 5
//! trees with at most 10 leaves each, and they evaluate these models on
//! small training sets ... Once increasing model complexity does not yield
//! more accuracy gains, they increase the training set size").
//!
//! FLAML deploys a **single** model — the source of its lowest-of-all
//! inference energy in the paper's Fig. 3 — and "finishes evaluating the
//! last model that was started before hitting the time limit" (Table 7's
//! mild overshoot).

use crate::id::SystemId;
use crate::system::{
    execution_tracker, majority_class_predictor, AutoMlRun, AutoMlSystem, DesignCard, FaultState,
    FitContext, Predictor, RunSpec,
};
use green_automl_dataset::Dataset;
use green_automl_energy::SpanKind;
use green_automl_ml::validation::{fit_scoped, holdout_eval_scoped};
use green_automl_ml::{ForestParams, GbParams, ModelSpec, Pipeline, PreprocSpec, TreeParams};

/// The FLAML simulator.
#[derive(Debug, Clone)]
pub struct Flaml {
    /// Starting training-sample size.
    pub initial_sample: usize,
    /// Hold-out validation fraction.
    pub val_frac: f64,
    /// Nominal feature count above which the feature-pruning preprocessor
    /// activates (the paper credits FLAML's strength on > 2k-feature data
    /// to "a feature pruning strategy").
    pub feature_prune_above: f64,
}

impl Default for Flaml {
    fn default() -> Self {
        Flaml {
            initial_sample: 64,
            val_frac: 0.25,
            feature_prune_above: 2000.0,
        }
    }
}

/// The complexity ladder per learner family: each rung is a strictly more
/// expensive (and potentially more accurate) configuration.
fn ladders() -> Vec<Vec<ModelSpec>> {
    let forest = |n_trees: usize, depth: usize| ForestParams {
        n_trees,
        tree: TreeParams {
            max_depth: depth,
            min_samples_leaf: 4,
            max_features_frac: 0.5,
            ..Default::default()
        },
        bootstrap: true,
    };
    vec![
        // Random forest: FLAML's canonical 5-tree starting point.
        vec![
            ModelSpec::RandomForest(forest(5, 4)),
            ModelSpec::RandomForest(forest(10, 6)),
            ModelSpec::RandomForest(forest(20, 9)),
            ModelSpec::RandomForest(forest(40, 12)),
            ModelSpec::RandomForest(forest(80, 15)),
        ],
        // Gradient boosting (the LightGBM role).
        vec![
            ModelSpec::GradientBoosting(GbParams {
                n_rounds: 5,
                learning_rate: 0.2,
                max_depth: 3,
                subsample: 0.9,
            }),
            ModelSpec::GradientBoosting(GbParams {
                n_rounds: 12,
                learning_rate: 0.15,
                max_depth: 3,
                subsample: 0.9,
            }),
            ModelSpec::GradientBoosting(GbParams {
                n_rounds: 25,
                learning_rate: 0.1,
                max_depth: 4,
                subsample: 0.85,
            }),
            ModelSpec::GradientBoosting(GbParams {
                n_rounds: 50,
                learning_rate: 0.08,
                max_depth: 5,
                subsample: 0.85,
            }),
        ],
        // Single trees (cheapest family).
        vec![
            ModelSpec::DecisionTree(TreeParams {
                max_depth: 4,
                ..Default::default()
            }),
            ModelSpec::DecisionTree(TreeParams {
                max_depth: 8,
                ..Default::default()
            }),
            ModelSpec::DecisionTree(TreeParams {
                max_depth: 14,
                ..Default::default()
            }),
        ],
    ]
}

impl AutoMlSystem for Flaml {
    fn name(&self) -> &'static str {
        "FLAML"
    }

    fn id(&self) -> SystemId {
        SystemId::Flaml
    }

    fn design(&self) -> DesignCard {
        DesignCard {
            system: SystemId::Flaml,
            search_space: "models",
            search_init: "low complexity models",
            search: "cost-based",
            ensembling: "-",
        }
    }

    fn fit_with(&self, train: &Dataset, spec: &RunSpec, ctx: &FitContext<'_>) -> AutoMlRun {
        let mut tracker = execution_tracker(self.id(), spec);
        let scope = ctx.scope(train, &tracker);
        let preprocs = if train.nominal_features() > self.feature_prune_above {
            vec![PreprocSpec::SelectKBest { frac: 0.2 }]
        } else {
            vec![]
        };

        let ladders = ladders();
        // Per-family rung currently reached.
        let mut rung = vec![0usize; ladders.len()];
        let mut exhausted = vec![false; ladders.len()];
        let mut sample = self.initial_sample.max(train.n_classes * 4);
        let mut best: Option<(f64, Pipeline)> = None;
        let mut n_evaluations = 0usize;
        let mut stalled_rounds = 0usize;
        let mut faults = FaultState::new(self.id(), spec);

        // Cost-frugal loop: round-robin the families at their current rung;
        // each started evaluation runs to completion (Table 7 semantics).
        'outer: loop {
            let mut improved = false;
            for fam in 0..ladders.len() {
                if tracker.now() >= spec.budget_s {
                    break 'outer;
                }
                if exhausted[fam] && sample >= train.n_rows() {
                    continue;
                }
                let r = rung[fam].min(ladders[fam].len() - 1);
                tracker.span_open(SpanKind::Trial, || {
                    format!("trial {}", faults.trials_started())
                });
                // An injected fault kills this family's trial: charge the
                // wasted work and move on without a score.
                if let Some(fault) = faults.next_trial() {
                    faults.charge(&mut tracker, fault);
                    tracker.span_close_fault(fault.kind);
                    continue;
                }
                let pipeline = Pipeline::new(preprocs.clone(), ladders[fam][r].clone());
                let trial_start = tracker.now();
                let (score, _) = holdout_eval_scoped(
                    &pipeline,
                    train,
                    self.val_frac,
                    Some(sample),
                    spec.seed.wrapping_add(n_evaluations as u64),
                    &mut tracker,
                    scope.as_ref(),
                );
                faults.observe_ok(tracker.now() - trial_start);
                tracker.span_close();
                n_evaluations += 1;
                let better = best.as_ref().is_none_or(|(s, _)| score > *s + 1e-6);
                if better {
                    best = Some((score, pipeline));
                    improved = true;
                    // Escalate the winning family's complexity.
                    if rung[fam] + 1 < ladders[fam].len() {
                        rung[fam] += 1;
                    } else {
                        exhausted[fam] = true;
                    }
                } else if rung[fam] + 1 < ladders[fam].len() {
                    // Also climb occasionally so cheap families do not stall
                    // the ladder forever.
                    rung[fam] += 1;
                } else {
                    exhausted[fam] = true;
                }
            }
            if !improved {
                stalled_rounds += 1;
            } else {
                stalled_rounds = 0;
            }
            // Complexity no longer helps: grow the training sample.
            if stalled_rounds >= 1 && sample < train.n_rows() {
                sample = (sample * 2).min(train.n_rows());
                exhausted.iter_mut().for_each(|e| *e = false);
                stalled_rounds = 0;
            } else if stalled_rounds >= 2 && sample >= train.n_rows() {
                // Fully converged: FLAML idles out the rest of the budget
                // re-validating candidates (charged as active search).
                crate::system::burn_active_until(&mut tracker, spec.budget_s);
                break;
            }
            if n_evaluations >= ((spec.budget_s * 0.5) as usize).clamp(10, 150) {
                crate::system::burn_active_until(&mut tracker, spec.budget_s);
                break;
            }
        }

        // Final refit of the winner on the full training data — or, if
        // every started trial was killed, the constant-class fallback.
        tracker.span_open(SpanKind::Trial, || "refit".to_string());
        let predictor = match best {
            Some((_, winner)) => Predictor::Single(fit_scoped(
                &winner,
                train,
                &[],
                spec.seed,
                &mut tracker,
                scope.as_ref(),
            )),
            None => majority_class_predictor(train),
        };
        tracker.span_close();

        AutoMlRun {
            predictor,
            execution: tracker.measurement(),
            n_evaluations,
            budget_s: spec.budget_s,
            n_trial_faults: faults.n_faults(),
            wasted_j: faults.wasted_j(),
            trace: tracker.take_trace(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use green_automl_dataset::split::train_test_split;
    use green_automl_dataset::TaskSpec;
    use green_automl_energy::{CostTracker, Device};
    use green_automl_ml::metrics::balanced_accuracy;

    fn task() -> Dataset {
        let mut s = TaskSpec::new("fl-t", 260, 6, 2);
        s.cluster_sep = 2.1;
        s.generate().with_scales(8.0, 1.0)
    }

    #[test]
    fn deploys_a_single_model_that_learns() {
        let ds = task();
        let (train, test) = train_test_split(&ds, 0.34, 0);
        let run = Flaml::default().fit(&train, &RunSpec::single_core(30.0, 0));
        assert!(matches!(run.predictor, Predictor::Single(_)));
        assert_eq!(run.predictor.n_models(), 1);
        let mut t = CostTracker::new(Device::xeon_gold_6132(), 1);
        let pred = run.predictor.predict(&test, &mut t);
        let bal = balanced_accuracy(&test.labels, &pred, 2);
        assert!(bal > 0.7, "balanced accuracy {bal}");
    }

    #[test]
    fn inference_is_cheaper_than_an_ensemble_system() {
        let ds = task();
        let (train, _) = train_test_split(&ds, 0.34, 0);
        let spec = RunSpec::single_core(30.0, 1);
        let flaml = Flaml::default().fit(&train, &spec);
        let askl = crate::askl::AutoSklearn1::default().fit(&train, &spec);
        let dev = Device::xeon_gold_6132();
        assert!(
            flaml.predictor.inference_kwh_per_row(dev, 1)
                < askl.predictor.inference_kwh_per_row(dev, 1)
        );
    }

    #[test]
    fn budget_is_respected_modulo_last_model() {
        let train = task();
        let run = Flaml::default().fit(&train, &RunSpec::single_core(30.0, 2));
        // FLAML finishes the last started model: small overshoot only.
        assert!(
            run.overshoot_ratio() < 1.6,
            "overshoot {:.2} too large",
            run.overshoot_ratio()
        );
        assert!(run.execution.duration_s >= 29.0, "should use the budget");
    }

    #[test]
    fn wide_data_triggers_feature_pruning() {
        let mut s = TaskSpec::new("wide", 150, 40, 2);
        s.cluster_sep = 2.0;
        // Nominal width above the pruning threshold via feat_scale.
        let train = s.generate().with_scales(4.0, 100.0);
        let run = Flaml::default().fit(&train, &RunSpec::single_core(10.0, 0));
        if let Predictor::Single(p) = &run.predictor {
            assert!(
                p.spec().describe().contains("select_k_best"),
                "expected pruning in {}",
                p.spec().describe()
            );
        } else {
            panic!("expected single predictor");
        }
    }

    #[test]
    fn longer_budgets_do_not_reduce_evaluations() {
        let train = task();
        let short = Flaml::default().fit(&train, &RunSpec::single_core(10.0, 3));
        let long = Flaml::default().fit(&train, &RunSpec::single_core(120.0, 3));
        assert!(long.n_evaluations >= short.n_evaluations);
    }
}
