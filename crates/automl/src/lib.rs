//! # green-automl-systems
//!
//! From-scratch Rust simulations of the seven AutoML configurations the
//! paper benchmarks, behind one [`AutoMlSystem`] trait:
//!
//! | System | Paper §2.2 | Module |
//! |---|---|---|
//! | AutoGluon 0.6.2 | predefined pipelines + bagging + stacking + Caruana | [`autogluon`] |
//! | AutoSklearn 1 (0.14.7) | BO + meta-learned warm start + Caruana top-50 | [`askl`] |
//! | AutoSklearn 2 (0.14.7) | BO + portfolio + fidelity schedule + Caruana | [`askl`] |
//! | FLAML 1.2.4 | cost-frugal search, single low-cost model | [`flaml`] |
//! | TabPFN 0.1.9 | zero-search in-context transformer | [`tabpfn`] |
//! | TPOT 0.11.7 | NSGA-II genetic programming, 5-fold CV | [`tpot`] |
//! | CAML | BO + successive halving + constraints, tunable parameters | [`caml`] |
//!
//! Every `fit` runs against a **virtual-clock budget** on a simulated
//! [`green_automl_energy::Device`] and returns both a deployable
//! [`Predictor`] and the execution-stage [`Measurement`]. The systems'
//! budget-adherence quirks from the paper's Table 7 are reproduced: CAML
//! strict, FLAML finishes its last model, AutoGluon estimates stacking
//! cost optimistically, AutoSklearn excludes ensembling from the budget,
//! TabPFN ignores budgets entirely.

pub mod askl;
pub mod autogluon;
pub mod baselines;
pub mod caml;
pub mod ensemble;
pub mod flaml;
pub mod id;
pub mod metastore;
pub mod pipespace;
pub mod system;
pub mod tabpfn;
pub mod tpot;

pub use askl::{AutoSklearn1, AutoSklearn2};
pub use autogluon::{AutoGluon, AutoGluonQuality};
pub use baselines::{GridSearchBaseline, RandomSearchBaseline};
pub use caml::{Caml, CamlParams};
pub use ensemble::{caruana_selection, StackedEnsemble, WeightedEnsemble};
pub use flaml::Flaml;
pub use id::{ParseSystemIdError, SystemId};
pub use system::{
    execution_tracker, majority_class_predictor, AutoMlRun, AutoMlSystem, Constraints, DesignCard,
    FaultState, FitContext, Predictor, RunSpec, RunSpecError,
};
pub use tabpfn::TabPfn;
pub use tpot::Tpot;

/// All seven benchmarked system configurations, boxed, in the paper's
/// reporting order.
pub fn all_systems() -> Vec<Box<dyn AutoMlSystem>> {
    vec![
        Box::new(TabPfn::default()),
        Box::new(AutoGluon::default()),
        Box::new(AutoSklearn1::default()),
        Box::new(AutoSklearn2::default()),
        Box::new(Caml::default()),
        Box::new(Tpot::default()),
        Box::new(Flaml::default()),
    ]
}
