//! AutoSklearn's meta-learned warm-start store.
//!
//! The real system ran 24 h of offline search on each of 140 repository
//! datasets and, for a new dataset, seeds Bayesian optimisation with the
//! best pipelines of the most meta-similar datasets (paper §2.2). That
//! offline energy belongs to the *development* stage and is sunk before any
//! measured run — so here the store is a frozen table: dataset *profiles*
//! (meta-feature vectors) mapped to strong starting configurations,
//! expressed in the ASKL [`PipelineSpace`] layout.

use crate::pipespace::{Family, PipelineSpace};
use green_automl_dataset::MetaFeatures;
use green_automl_optim::Config;

/// One frozen warm-start entry.
#[derive(Debug, Clone)]
struct Entry {
    profile: Vec<f64>,
    config: Config,
}

/// The frozen meta-learning artefact.
#[derive(Debug, Clone)]
pub struct MetaStore {
    entries: Vec<Entry>,
}

/// Build a pipeline config in the flat 14-parameter layout of
/// [`PipelineSpace`].
#[allow(clippy::too_many_arguments)]
fn cfg(
    space: &PipelineSpace,
    family: Family,
    scaler: usize,
    feat_pre: usize,
    feat_frac: f64,
    depth: i64,
    n_trees: i64,
    gb_rounds: i64,
    lr: f64,
    epochs: i64,
) -> Config {
    let fam_idx = space
        .families()
        .iter()
        .position(|&f| f == family)
        .expect("family not in space") as f64;
    Config::from_values(vec![
        fam_idx,
        scaler as f64,
        feat_pre as f64,
        feat_frac,
        depth as f64,
        n_trees as f64,
        gb_rounds as f64,
        lr,
        7.0,  // knn_k
        32.0, // mlp_hidden
        epochs as f64,
        0.85, // subsample
        0.4,  // max_feat_frac
        1e-4, // l2
    ])
}

impl MetaStore {
    /// The built-in store: profiles span the (instances, features, classes)
    /// landscape of the AMLB suite; configurations encode the folk wisdom
    /// the offline search would recover (boosted/bagged trees dominate
    /// tabular data; wide data wants feature selection; tiny data tolerates
    /// k-NN; many-class data wants forests).
    pub fn builtin(space: &PipelineSpace) -> MetaStore {
        // Profile layout mirrors MetaFeatures::as_vec():
        // [log_inst, log_feat, log_classes, log_dim, cat_frac, entropy].
        let entries = vec![
            // Small, narrow, binary.
            Entry {
                profile: vec![2.8, 1.1, 0.30, -1.7, 0.2, 1.0],
                config: cfg(
                    space,
                    Family::GradientBoosting,
                    1,
                    0,
                    1.0,
                    4,
                    24,
                    40,
                    0.1,
                    20,
                ),
            },
            Entry {
                profile: vec![2.9, 1.3, 0.30, -1.6, 0.1, 0.9],
                config: cfg(space, Family::Knn, 1, 0, 1.0, 6, 16, 20, 0.05, 15),
            },
            // Mid-size, binary.
            Entry {
                profile: vec![4.3, 1.5, 0.30, -2.8, 0.3, 1.0],
                config: cfg(
                    space,
                    Family::GradientBoosting,
                    0,
                    0,
                    1.0,
                    5,
                    32,
                    50,
                    0.08,
                    25,
                ),
            },
            Entry {
                profile: vec![4.5, 1.2, 0.30, -3.3, 0.4, 0.7],
                config: cfg(space, Family::RandomForest, 0, 0, 1.0, 14, 64, 30, 0.1, 20),
            },
            // Large, narrow.
            Entry {
                profile: vec![5.6, 1.7, 0.30, -3.9, 0.2, 1.0],
                config: cfg(
                    space,
                    Family::GradientBoosting,
                    0,
                    0,
                    1.0,
                    6,
                    48,
                    60,
                    0.12,
                    25,
                ),
            },
            Entry {
                profile: vec![5.7, 0.8, 0.40, -4.9, 0.5, 0.8],
                config: cfg(space, Family::RandomForest, 0, 0, 1.0, 16, 80, 30, 0.1, 20),
            },
            // Wide (high-dimensional) data: select features first.
            Entry {
                profile: vec![4.0, 3.2, 0.50, -0.8, 0.0, 1.0],
                config: cfg(space, Family::LinearSvm, 1, 1, 0.25, 8, 32, 30, 0.05, 30),
            },
            Entry {
                profile: vec![4.3, 3.6, 0.30, -0.7, 0.0, 1.0],
                config: cfg(space, Family::Logistic, 1, 1, 0.2, 8, 32, 30, 0.08, 30),
            },
            Entry {
                profile: vec![3.7, 2.9, 0.95, -0.8, 0.0, 1.0],
                config: cfg(space, Family::RandomForest, 0, 1, 0.3, 12, 64, 30, 0.1, 20),
            },
            // Many classes.
            Entry {
                profile: vec![4.8, 1.7, 2.0, -3.1, 0.1, 1.0],
                config: cfg(space, Family::RandomForest, 1, 0, 1.0, 15, 72, 20, 0.1, 20),
            },
            Entry {
                profile: vec![5.6, 1.8, 2.55, -3.8, 0.0, 1.0],
                config: cfg(space, Family::ExtraTrees, 1, 0, 1.0, 14, 64, 20, 0.1, 20),
            },
            // Mid-size multiclass image-like (Fashion-MNIST profile).
            Entry {
                profile: vec![4.8, 2.9, 1.0, -1.9, 0.0, 1.0],
                config: cfg(space, Family::Mlp, 1, 2, 0.3, 8, 32, 30, 0.05, 30),
            },
        ];
        MetaStore { entries }
    }

    /// Number of stored profiles.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the store has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `n` warm-start configurations whose profiles are meta-closest to
    /// `meta`, nearest first (cycling if `n` exceeds the store).
    pub fn warm_start(&self, meta: &MetaFeatures, n: usize) -> Vec<Config> {
        let target = meta.as_vec();
        let mut ranked: Vec<(f64, &Entry)> = self
            .entries
            .iter()
            .map(|e| {
                let d: f64 = e
                    .profile
                    .iter()
                    .zip(&target)
                    .map(|(a, b)| (a - b).powi(2))
                    .sum();
                (d, e)
            })
            .collect();
        ranked.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        (0..n)
            .map(|i| ranked[i % ranked.len()].1.config.clone())
            .collect()
    }

    /// A fixed portfolio (ASKL2-style): the first `n` entries in stored
    /// order, independent of the dataset.
    pub fn portfolio(&self, n: usize) -> Vec<Config> {
        (0..n)
            .map(|i| self.entries[i % self.entries.len()].config.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use green_automl_dataset::{amlb39, MaterializeOptions};

    #[test]
    fn store_is_nonempty_and_decodable() {
        let space = PipelineSpace::askl();
        let store = MetaStore::builtin(&space);
        assert!(store.len() >= 10);
        for c in store.portfolio(store.len()) {
            let p = space.decode(&c);
            assert!(!p.describe().is_empty());
        }
    }

    #[test]
    fn wide_datasets_warm_start_with_feature_selection() {
        let space = PipelineSpace::askl();
        let store = MetaStore::builtin(&space);
        let robert = amlb39().into_iter().find(|m| m.name == "robert").unwrap();
        let ds = robert.materialize(&MaterializeOptions::tiny());
        let meta = MetaFeatures::from_dataset(&ds);
        let first = &store.warm_start(&meta, 1)[0];
        let pipeline = space.decode(first);
        // The nearest profile for a 7200-feature dataset must include a
        // feature preprocessor.
        assert!(
            pipeline.describe().contains("select_k_best") || pipeline.describe().contains("pca"),
            "got {}",
            pipeline.describe()
        );
    }

    #[test]
    fn small_and_large_datasets_get_different_starts() {
        let space = PipelineSpace::askl();
        let store = MetaStore::builtin(&space);
        let all = amlb39();
        let blood = all
            .iter()
            .find(|m| m.name == "blood-transfusion-service-center")
            .unwrap()
            .materialize(&MaterializeOptions::tiny());
        let covertype = all
            .iter()
            .find(|m| m.name == "covertype")
            .unwrap()
            .materialize(&MaterializeOptions::tiny());
        let a = store.warm_start(&MetaFeatures::from_dataset(&blood), 1);
        let b = store.warm_start(&MetaFeatures::from_dataset(&covertype), 1);
        assert_ne!(a[0], b[0]);
    }

    #[test]
    fn warm_start_cycles_past_store_size() {
        let space = PipelineSpace::askl();
        let store = MetaStore::builtin(&space);
        let meta = MetaFeatures::from_meta(&amlb39()[0]);
        let many = store.warm_start(&meta, store.len() + 3);
        assert_eq!(many.len(), store.len() + 3);
        assert_eq!(many[0], many[store.len()]);
    }
}
