//! The common surface of all simulated AutoML systems.

use crate::ensemble::{StackedEnsemble, WeightedEnsemble};
use green_automl_dataset::Dataset;
use green_automl_energy::{CostTracker, Device, Measurement, OpCounts, ParallelProfile};
use green_automl_ml::{FittedPipeline, Matrix};

/// User-facing ML application constraints (paper §3.4 / Observation O3 —
/// CAML treats these as first-class citizens).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Constraints {
    /// Maximum allowed inference seconds per instance (on the run's device
    /// and core allocation). `None` = unconstrained.
    pub max_inference_s_per_row: Option<f64>,
}

/// One AutoML execution request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSpec {
    /// Search-time budget in (virtual) seconds — the paper's grid is
    /// 10 s / 30 s / 1 min / 5 min.
    pub budget_s: f64,
    /// CPU cores allocated to the run.
    pub cores: usize,
    /// Machine model.
    pub device: Device,
    /// Seed; the paper repeats every experiment 10 times.
    pub seed: u64,
    /// Application constraints.
    pub constraints: Constraints,
}

impl RunSpec {
    /// A single-core run on the paper's CPU testbed.
    pub fn single_core(budget_s: f64, seed: u64) -> RunSpec {
        RunSpec {
            budget_s,
            cores: 1,
            device: Device::xeon_gold_6132(),
            seed,
            constraints: Constraints::default(),
        }
    }
}

/// Fixed serialised-artefact overhead per deployed model (metadata,
/// framework runtime state) used by [`Predictor::memory_bytes`] — loosely
/// the size of a pickled scikit-learn estimator with empty buffers.
pub const ARTEFACT_OVERHEAD_BYTES: f64 = 64.0 * 1024.0;

/// What an AutoML run deploys for the inference stage.
#[derive(Debug, Clone, PartialEq)]
pub enum Predictor {
    /// One pipeline (FLAML, CAML, TPOT, TabPFN).
    Single(FittedPipeline),
    /// A weighted flat ensemble (AutoSklearn's Caruana selection).
    Ensemble(WeightedEnsemble),
    /// A bagged + stacked ensemble (AutoGluon).
    Stacked(StackedEnsemble),
    /// A constant-class fallback (e.g. TabPFN refusing > 10 classes).
    Constant {
        /// The class always predicted.
        class: u32,
        /// Size of the label space.
        n_classes: usize,
    },
}

// Deployed predictors cross thread boundaries in the parallel benchmark
// grid; keep them shareable.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Predictor>();
    assert_send_sync::<AutoMlRun>();
    assert_send_sync::<RunSpec>();
};

impl Predictor {
    /// Hard-label predictions on a raw dataset.
    pub fn predict(&self, ds: &Dataset, tracker: &mut CostTracker) -> Vec<u32> {
        match self {
            Predictor::Single(p) => p.predict(ds, tracker),
            Predictor::Ensemble(e) => e.predict(ds, tracker),
            Predictor::Stacked(s) => s.predict(ds, tracker),
            Predictor::Constant { class, .. } => {
                tracker.charge(
                    OpCounts::scalar(ds.n_rows() as f64 * ds.row_scale),
                    ParallelProfile::batch_inference(),
                );
                vec![*class; ds.n_rows()]
            }
        }
    }

    /// Hard-label predictions with batch-amortised framework dispatch: the
    /// per-prediction overhead every deployed model pays on a row-at-a-time
    /// request is charged once per batch (per model artefact) instead of
    /// once per row. Predictions are identical to [`Predictor::predict`];
    /// only the charged overhead differs — this is the path a micro-batching
    /// serving layer uses.
    pub fn predict_batch(&self, ds: &Dataset, tracker: &mut CostTracker) -> Vec<u32> {
        match self {
            Predictor::Single(p) => p.predict_batch(ds, tracker),
            Predictor::Ensemble(e) => {
                green_automl_ml::models::argmax_rows(&e.predict_proba_batch(ds, tracker))
            }
            Predictor::Stacked(s) => {
                green_automl_ml::models::argmax_rows(&s.predict_proba_batch(ds, tracker))
            }
            // The constant predictor has no framework dispatch to amortise.
            c @ Predictor::Constant { .. } => c.predict(ds, tracker),
        }
    }

    /// Class probabilities on a raw dataset.
    pub fn predict_proba(&self, ds: &Dataset, tracker: &mut CostTracker) -> Matrix {
        match self {
            Predictor::Single(p) => p.predict_proba(ds, tracker),
            Predictor::Ensemble(e) => e.predict_proba(ds, tracker),
            Predictor::Stacked(s) => s.predict_proba(ds, tracker),
            Predictor::Constant { class, n_classes } => {
                tracker.charge(
                    OpCounts::scalar(ds.n_rows() as f64 * ds.row_scale),
                    ParallelProfile::batch_inference(),
                );
                let mut m = Matrix::zeros(ds.n_rows(), *n_classes);
                for r in 0..ds.n_rows() {
                    m.set(r, *class as usize, 1.0);
                }
                m
            }
        }
    }

    /// Per-row inference operations (for constraint checks and per-
    /// prediction energy estimates).
    pub fn inference_ops_per_row(&self) -> OpCounts {
        match self {
            Predictor::Single(p) => p.inference_ops_per_row(),
            Predictor::Ensemble(e) => e.inference_ops_per_row(),
            Predictor::Stacked(s) => s.inference_ops_per_row(),
            Predictor::Constant { .. } => OpCounts::scalar(1.0),
        }
    }

    /// Number of trained models answering at inference (the paper's O1:
    /// ensembles cost an order of magnitude more energy here).
    pub fn n_models(&self) -> usize {
        match self {
            Predictor::Single(_) => 1,
            Predictor::Ensemble(e) => e.n_models(),
            Predictor::Stacked(s) => s.n_models(),
            Predictor::Constant { .. } => 0,
        }
    }

    /// Resident memory footprint of the deployment artefact, in bytes:
    /// 8 bytes per model parameter plus a fixed per-artefact overhead
    /// (serialised pipeline metadata, framework runtime state) for every
    /// model that answers queries. This is what a model registry charges as
    /// `mem_bytes` when cold-loading the predictor.
    pub fn memory_bytes(&self) -> f64 {
        let (params, artefacts) = match self {
            Predictor::Single(p) => (p.n_params(), 1),
            Predictor::Ensemble(e) => (e.n_params(), e.n_models()),
            Predictor::Stacked(s) => (s.n_params(), s.n_models()),
            Predictor::Constant { .. } => (0, 1),
        };
        params as f64 * 8.0 + artefacts as f64 * ARTEFACT_OVERHEAD_BYTES
    }

    /// Energy (kWh) to predict one instance on `cores` of `device`.
    pub fn inference_kwh_per_row(&self, device: Device, cores: usize) -> f64 {
        let mut probe = CostTracker::new(device, cores);
        probe.charge(
            self.inference_ops_per_row(),
            ParallelProfile::batch_inference(),
        );
        probe.measurement().kwh()
    }

    /// Seconds to predict one instance on `cores` of `device`.
    pub fn inference_s_per_row(&self, device: Device, cores: usize) -> f64 {
        let mut probe = CostTracker::new(device, cores);
        probe.charge(
            self.inference_ops_per_row(),
            ParallelProfile::batch_inference(),
        );
        probe.now()
    }
}

/// The outcome of one AutoML execution.
#[derive(Debug, Clone)]
pub struct AutoMlRun {
    /// The deployed predictor.
    pub predictor: Predictor,
    /// Execution-stage measurement (virtual time, energy, ops).
    pub execution: Measurement,
    /// Pipelines evaluated during search.
    pub n_evaluations: usize,
    /// The budget that was requested (actual time is in `execution`).
    pub budget_s: f64,
}

impl AutoMlRun {
    /// How far past its budget the system ran (Table 7), as a ratio.
    pub fn overshoot_ratio(&self) -> f64 {
        if self.budget_s <= 0.0 {
            1.0
        } else {
            self.execution.duration_s / self.budget_s
        }
    }
}

/// One row of the paper's Table 1: how a system implements each stage of
/// the AutoML process (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignCard {
    /// System name.
    pub system: &'static str,
    /// Search-space design.
    pub search_space: &'static str,
    /// Search initialisation.
    pub search_init: &'static str,
    /// Search strategy.
    pub search: &'static str,
    /// Ensembling strategy.
    pub ensembling: &'static str,
}

/// A simulated AutoML system.
///
/// `Send + Sync` is a supertrait so the benchmark grid can fan
/// `&dyn AutoMlSystem` out across worker threads: a system must be a frozen
/// artefact during `fit` — any per-run state belongs in the run, not the
/// system.
pub trait AutoMlSystem: Send + Sync {
    /// Display name used in the paper's figures.
    fn name(&self) -> &'static str;

    /// The system's Table 1 row.
    fn design(&self) -> DesignCard;

    /// Smallest supported budget (ASKL starts at 30 s, TPOT at 1 min; the
    /// paper omits smaller points for them).
    fn min_budget_s(&self) -> f64 {
        0.0
    }

    /// `true` if the system ignores search budgets entirely (TabPFN).
    fn budget_free(&self) -> bool {
        false
    }

    /// Run AutoML on a training dataset under `spec`.
    fn fit(&self, train: &Dataset, spec: &RunSpec) -> AutoMlRun;
}

/// Keep searching (charging active compute) until the virtual deadline —
/// used by systems that hold their allocation busy for the whole budget
/// even after our simulation has exhausted its evaluation cap. Charging
/// active work (rather than idling) keeps the power profile faithful.
pub fn burn_active_until(tracker: &mut CostTracker, deadline_s: f64) {
    let remaining = deadline_s - tracker.now();
    if remaining <= 0.0 {
        return;
    }
    let flops = remaining * tracker.device().cpu.scalar_flops_per_core;
    tracker.charge(OpCounts::scalar(flops), ParallelProfile::serial());
}

#[cfg(test)]
mod tests {
    use super::*;
    use green_automl_dataset::TaskSpec;
    use green_automl_ml::{ModelSpec, Pipeline};

    #[test]
    fn constant_predictor_predicts_its_class() {
        let ds = TaskSpec::new("t", 20, 3, 3).generate();
        let p = Predictor::Constant {
            class: 2,
            n_classes: 3,
        };
        let mut t = CostTracker::new(Device::xeon_gold_6132(), 1);
        assert_eq!(p.predict(&ds, &mut t), vec![2; 20]);
        let proba = p.predict_proba(&ds, &mut t);
        assert_eq!(proba.get(0, 2), 1.0);
        assert_eq!(p.n_models(), 0);
    }

    #[test]
    fn single_predictor_reports_costs() {
        let ds = TaskSpec::new("t", 120, 4, 2).generate();
        let mut t = CostTracker::new(Device::xeon_gold_6132(), 1);
        let fitted = Pipeline::new(vec![], ModelSpec::GaussianNb).fit(&ds, &mut t, 0);
        let p = Predictor::Single(fitted);
        assert_eq!(p.n_models(), 1);
        assert!(p.inference_kwh_per_row(Device::xeon_gold_6132(), 1) > 0.0);
        assert!(p.inference_s_per_row(Device::xeon_gold_6132(), 1) > 0.0);
    }

    #[test]
    fn burn_active_fills_to_deadline_with_active_power() {
        let mut t = CostTracker::new(Device::xeon_gold_6132(), 1);
        burn_active_until(&mut t, 10.0);
        assert!((t.now() - 10.0).abs() < 1e-9);
        let active = t.measurement().energy.total_joules();
        let mut idle = CostTracker::new(Device::xeon_gold_6132(), 1);
        idle.idle_for(10.0);
        assert!(active > idle.measurement().energy.total_joules());
        // Idempotent past the deadline.
        burn_active_until(&mut t, 5.0);
        assert!((t.now() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn overshoot_ratio_is_duration_over_budget() {
        let mut t = CostTracker::new(Device::xeon_gold_6132(), 1);
        t.idle_for(20.0);
        let run = AutoMlRun {
            predictor: Predictor::Constant {
                class: 0,
                n_classes: 2,
            },
            execution: t.measurement(),
            n_evaluations: 0,
            budget_s: 10.0,
        };
        assert!((run.overshoot_ratio() - 2.0).abs() < 1e-12);
    }
}
