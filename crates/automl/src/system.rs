//! The common surface of all simulated AutoML systems.

use crate::ensemble::{StackedEnsemble, WeightedEnsemble};
use crate::id::SystemId;
use green_automl_dataset::Dataset;
use green_automl_energy::fault::{FaultInjector, FaultPlan, TrialFault};
use green_automl_energy::trace::{span_id, SpanKind, Trace};
use green_automl_energy::{CostTracker, Device, Measurement, OpCounts, ParallelProfile};
use green_automl_ml::{CacheView, EvalCache, EvalScope, FittedPipeline, Matrix};

/// User-facing ML application constraints (paper §3.4 / Observation O3 —
/// CAML treats these as first-class citizens).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Constraints {
    /// Maximum allowed inference seconds per instance (on the run's device
    /// and core allocation). `None` = unconstrained.
    pub max_inference_s_per_row: Option<f64>,
}

/// One AutoML execution request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSpec {
    /// Search-time budget in (virtual) seconds — the paper's grid is
    /// 10 s / 30 s / 1 min / 5 min.
    pub budget_s: f64,
    /// CPU cores allocated to the run.
    pub cores: usize,
    /// Machine model.
    pub device: Device,
    /// Seed; the paper repeats every experiment 10 times.
    pub seed: u64,
    /// Application constraints.
    pub constraints: Constraints,
    /// Injected-failure schedule for this run (`FaultPlan::default()` =
    /// no faults). Decisions derive from `(fault.seed, site)` only, so the
    /// same spec fails identically at every worker count.
    pub fault: FaultPlan,
    /// Record an energy [`Trace`] during the run (off by default). Tracing
    /// is zero-cost on the virtual timeline: it cannot change any measured
    /// number, only attach the span attribution to the run.
    pub trace: bool,
}

impl RunSpec {
    /// A single-core run on the paper's CPU testbed.
    pub fn single_core(budget_s: f64, seed: u64) -> RunSpec {
        RunSpec {
            budget_s,
            cores: 1,
            device: Device::xeon_gold_6132(),
            seed,
            constraints: Constraints::default(),
            fault: FaultPlan::disabled(),
            trace: false,
        }
    }

    /// The same spec with `plan` installed.
    pub fn with_fault(self, plan: FaultPlan) -> RunSpec {
        RunSpec {
            fault: plan,
            ..self
        }
    }

    /// The same spec with span tracing enabled.
    pub fn with_trace(self) -> RunSpec {
        RunSpec {
            trace: true,
            ..self
        }
    }

    /// Check the spec describes a physically meaningful run: a positive
    /// finite budget, at least one core, finite constraint values, and a
    /// valid fault plan. Invalid specs would otherwise surface as NaN
    /// energies or division panics deep inside a system's search loop.
    pub fn validate(&self) -> Result<(), RunSpecError> {
        if !(self.budget_s.is_finite() && self.budget_s > 0.0) {
            return Err(RunSpecError::NonPositiveBudget(self.budget_s));
        }
        if self.cores == 0 {
            return Err(RunSpecError::ZeroCores);
        }
        if let Some(v) = self.constraints.max_inference_s_per_row {
            if !(v.is_finite() && v > 0.0) {
                return Err(RunSpecError::NonFiniteConstraint(
                    "max_inference_s_per_row must be finite and positive",
                ));
            }
        }
        self.fault
            .validate()
            .map_err(RunSpecError::InvalidFaultPlan)
    }
}

/// Why a [`RunSpec`] was rejected by [`RunSpec::validate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RunSpecError {
    /// `budget_s` was not a positive finite number of seconds.
    NonPositiveBudget(f64),
    /// `cores` was zero.
    ZeroCores,
    /// A constraint held a non-finite or non-positive value.
    NonFiniteConstraint(&'static str),
    /// The fault plan failed [`FaultPlan::validate`].
    InvalidFaultPlan(green_automl_energy::FaultPlanError),
}

impl std::fmt::Display for RunSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunSpecError::NonPositiveBudget(b) => {
                write!(f, "budget_s must be a positive finite duration, got {b}")
            }
            RunSpecError::ZeroCores => write!(f, "cores must be at least 1"),
            RunSpecError::NonFiniteConstraint(msg) => write!(f, "invalid constraint: {msg}"),
            RunSpecError::InvalidFaultPlan(msg) => write!(f, "invalid fault plan: {msg}"),
        }
    }
}

impl std::error::Error for RunSpecError {}

/// Fixed serialised-artefact overhead per deployed model (metadata,
/// framework runtime state) used by [`Predictor::memory_bytes`] — loosely
/// the size of a pickled scikit-learn estimator with empty buffers.
pub const ARTEFACT_OVERHEAD_BYTES: f64 = 64.0 * 1024.0;

/// What an AutoML run deploys for the inference stage.
#[derive(Debug, Clone, PartialEq)]
pub enum Predictor {
    /// One pipeline (FLAML, CAML, TPOT, TabPFN).
    Single(FittedPipeline),
    /// A weighted flat ensemble (AutoSklearn's Caruana selection).
    Ensemble(WeightedEnsemble),
    /// A bagged + stacked ensemble (AutoGluon).
    Stacked(StackedEnsemble),
    /// A constant-class fallback (e.g. TabPFN refusing > 10 classes).
    Constant {
        /// The class always predicted.
        class: u32,
        /// Size of the label space.
        n_classes: usize,
    },
}

// Deployed predictors cross thread boundaries in the parallel benchmark
// grid; keep them shareable.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Predictor>();
    assert_send_sync::<AutoMlRun>();
    assert_send_sync::<RunSpec>();
};

impl Predictor {
    /// Hard-label predictions on a raw dataset.
    pub fn predict(&self, ds: &Dataset, tracker: &mut CostTracker) -> Vec<u32> {
        match self {
            Predictor::Single(p) => p.predict(ds, tracker),
            Predictor::Ensemble(e) => e.predict(ds, tracker),
            Predictor::Stacked(s) => s.predict(ds, tracker),
            Predictor::Constant { class, .. } => {
                tracker.charge(
                    OpCounts::scalar(ds.n_rows() as f64 * ds.row_scale),
                    ParallelProfile::batch_inference(),
                );
                vec![*class; ds.n_rows()]
            }
        }
    }

    /// Hard-label predictions with batch-amortised framework dispatch: the
    /// per-prediction overhead every deployed model pays on a row-at-a-time
    /// request is charged once per batch (per model artefact) instead of
    /// once per row. Predictions are identical to [`Predictor::predict`];
    /// only the charged overhead differs — this is the path a micro-batching
    /// serving layer uses.
    pub fn predict_batch(&self, ds: &Dataset, tracker: &mut CostTracker) -> Vec<u32> {
        match self {
            Predictor::Single(p) => p.predict_batch(ds, tracker),
            Predictor::Ensemble(e) => {
                green_automl_ml::models::argmax_rows(&e.predict_proba_batch(ds, tracker))
            }
            Predictor::Stacked(s) => {
                green_automl_ml::models::argmax_rows(&s.predict_proba_batch(ds, tracker))
            }
            // The constant predictor has no framework dispatch to amortise.
            c @ Predictor::Constant { .. } => c.predict(ds, tracker),
        }
    }

    /// Class probabilities on a raw dataset.
    pub fn predict_proba(&self, ds: &Dataset, tracker: &mut CostTracker) -> Matrix {
        match self {
            Predictor::Single(p) => p.predict_proba(ds, tracker),
            Predictor::Ensemble(e) => e.predict_proba(ds, tracker),
            Predictor::Stacked(s) => s.predict_proba(ds, tracker),
            Predictor::Constant { class, n_classes } => {
                tracker.charge(
                    OpCounts::scalar(ds.n_rows() as f64 * ds.row_scale),
                    ParallelProfile::batch_inference(),
                );
                let mut m = Matrix::zeros(ds.n_rows(), *n_classes);
                for r in 0..ds.n_rows() {
                    m.set(r, *class as usize, 1.0);
                }
                m
            }
        }
    }

    /// Per-row inference operations (for constraint checks and per-
    /// prediction energy estimates).
    pub fn inference_ops_per_row(&self) -> OpCounts {
        match self {
            Predictor::Single(p) => p.inference_ops_per_row(),
            Predictor::Ensemble(e) => e.inference_ops_per_row(),
            Predictor::Stacked(s) => s.inference_ops_per_row(),
            Predictor::Constant { .. } => OpCounts::scalar(1.0),
        }
    }

    /// Number of trained models answering at inference (the paper's O1:
    /// ensembles cost an order of magnitude more energy here).
    pub fn n_models(&self) -> usize {
        match self {
            Predictor::Single(_) => 1,
            Predictor::Ensemble(e) => e.n_models(),
            Predictor::Stacked(s) => s.n_models(),
            Predictor::Constant { .. } => 0,
        }
    }

    /// Resident memory footprint of the deployment artefact, in bytes:
    /// 8 bytes per model parameter plus a fixed per-artefact overhead
    /// (serialised pipeline metadata, framework runtime state) for every
    /// model that answers queries. This is what a model registry charges as
    /// `mem_bytes` when cold-loading the predictor.
    pub fn memory_bytes(&self) -> f64 {
        let (params, artefacts) = match self {
            Predictor::Single(p) => (p.n_params(), 1),
            Predictor::Ensemble(e) => (e.n_params(), e.n_models()),
            Predictor::Stacked(s) => (s.n_params(), s.n_models()),
            Predictor::Constant { .. } => (0, 1),
        };
        params as f64 * 8.0 + artefacts as f64 * ARTEFACT_OVERHEAD_BYTES
    }

    /// Energy (kWh) to predict one instance on `cores` of `device`.
    pub fn inference_kwh_per_row(&self, device: Device, cores: usize) -> f64 {
        let mut probe = CostTracker::new(device, cores);
        probe.charge(
            self.inference_ops_per_row(),
            ParallelProfile::batch_inference(),
        );
        probe.measurement().kwh()
    }

    /// Seconds to predict one instance on `cores` of `device`.
    pub fn inference_s_per_row(&self, device: Device, cores: usize) -> f64 {
        let mut probe = CostTracker::new(device, cores);
        probe.charge(
            self.inference_ops_per_row(),
            ParallelProfile::batch_inference(),
        );
        probe.now()
    }
}

/// The outcome of one AutoML execution.
#[derive(Debug, Clone)]
pub struct AutoMlRun {
    /// The deployed predictor.
    pub predictor: Predictor,
    /// Execution-stage measurement (virtual time, energy, ops).
    pub execution: Measurement,
    /// Pipelines evaluated during search.
    pub n_evaluations: usize,
    /// The budget that was requested (actual time is in `execution`).
    pub budget_s: f64,
    /// Candidate evaluations killed by injected faults (crash / timeout /
    /// OOM) during this run.
    pub n_trial_faults: usize,
    /// Energy burned by trials that were killed before producing a usable
    /// model, Joules. Included in `execution` — this field attributes it.
    pub wasted_j: f64,
    /// The execution-stage span trace, when the spec enabled tracing.
    pub trace: Option<Trace>,
}

impl AutoMlRun {
    /// How far past its budget the system ran (Table 7), as a ratio.
    pub fn overshoot_ratio(&self) -> f64 {
        if self.budget_s <= 0.0 {
            1.0
        } else {
            self.execution.duration_s / self.budget_s
        }
    }
}

/// One row of the paper's Table 1: how a system implements each stage of
/// the AutoML process (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignCard {
    /// System identity.
    pub system: SystemId,
    /// Search-space design.
    pub search_space: &'static str,
    /// Search initialisation.
    pub search_init: &'static str,
    /// Search strategy.
    pub search: &'static str,
    /// Ensembling strategy.
    pub ensembling: &'static str,
}

/// A simulated AutoML system.
///
/// `Send + Sync` is a supertrait so the benchmark grid can fan
/// `&dyn AutoMlSystem` out across worker threads: a system must be a frozen
/// artefact during `fit` — any per-run state belongs in the run, not the
/// system.
pub trait AutoMlSystem: Send + Sync {
    /// Display name used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Typed identity. Defaults to resolving the display name, so a
    /// system outside the paper's roster (a test double) automatically
    /// becomes [`SystemId::Custom`]; the shipped systems override this
    /// with their variant directly.
    fn id(&self) -> SystemId {
        SystemId::from_name(self.name())
    }

    /// The system's Table 1 row.
    fn design(&self) -> DesignCard;

    /// Smallest supported budget (ASKL starts at 30 s, TPOT at 1 min; the
    /// paper omits smaller points for them).
    fn min_budget_s(&self) -> f64 {
        0.0
    }

    /// `true` if the system ignores search budgets entirely (TabPFN).
    fn budget_free(&self) -> bool {
        false
    }

    /// Run AutoML on a training dataset under `spec`, with shared run
    /// context (e.g. the grid-wide evaluation memo table). The context is
    /// an accelerator only: every number a system produces must be bitwise
    /// identical with `FitContext::default()`.
    fn fit_with(&self, train: &Dataset, spec: &RunSpec, ctx: &FitContext<'_>) -> AutoMlRun;

    /// Run AutoML on a training dataset under `spec` without shared
    /// context (everything computed live).
    fn fit(&self, train: &Dataset, spec: &RunSpec) -> AutoMlRun {
        self.fit_with(train, spec, &FitContext::default())
    }

    /// Validate `spec`, then [`fit`](AutoMlSystem::fit). This is the entry
    /// point callers should prefer: a malformed spec comes back as a typed
    /// [`RunSpecError`] instead of a NaN-energy run or a panic mid-search.
    fn try_fit(&self, train: &Dataset, spec: &RunSpec) -> Result<AutoMlRun, RunSpecError> {
        spec.validate()?;
        Ok(self.fit(train, spec))
    }

    /// Validate `spec`, then [`fit_with`](AutoMlSystem::fit_with).
    fn try_fit_with(
        &self,
        train: &Dataset,
        spec: &RunSpec,
        ctx: &FitContext<'_>,
    ) -> Result<AutoMlRun, RunSpecError> {
        spec.validate()?;
        Ok(self.fit_with(train, spec, ctx))
    }
}

/// Shared, read-mostly context a caller hands to every fit in a benchmark
/// grid. Nothing in here may change any measured number — context only
/// makes runs cheaper to compute (real CPU), never different.
#[derive(Debug, Clone, Copy, Default)]
pub struct FitContext<'a> {
    /// The grid-wide content-addressed evaluation memo table. `None`
    /// computes every evaluation live.
    pub eval_cache: Option<&'a EvalCache>,
    /// The executing host's view of the shared cache. The default view
    /// (coordinator, no horizon) sees everything; a cluster executor sets
    /// a frozen horizon for cells on a partitioned host. Views only
    /// change hit-vs-recompute, never a measured number.
    pub cache_view: CacheView,
}

impl<'a> FitContext<'a> {
    /// A context that memoises evaluations in `cache`.
    pub fn with_cache(cache: &'a EvalCache) -> FitContext<'a> {
        FitContext {
            eval_cache: Some(cache),
            cache_view: CacheView::default(),
        }
    }

    /// This context restricted to a host's [`CacheView`].
    pub fn viewed(self, view: CacheView) -> FitContext<'a> {
        FitContext {
            cache_view: view,
            ..self
        }
    }

    /// Open an [`EvalScope`] over `train` for this fit, if a cache is
    /// installed. Call **after** the tracker's profile override and core
    /// count are final — both are part of the scope's context fingerprint.
    pub fn scope(&self, train: &Dataset, tracker: &CostTracker) -> Option<EvalScope<'a>> {
        self.eval_cache
            .map(|c| EvalScope::new_with_view(c, self.cache_view, train, tracker))
    }
}

/// The constant-class fallback deployed when every search candidate died:
/// always predict the training majority class. Never panics — the paper's
/// AMLB ancestry treats "framework returned no model" as a reportable
/// outcome, not an abort.
pub fn majority_class_predictor(train: &Dataset) -> Predictor {
    let counts = train.class_counts();
    let mut class = 0usize;
    for (i, &c) in counts.iter().enumerate() {
        if c > counts[class] {
            class = i;
        }
    }
    Predictor::Constant {
        class: class as u32,
        n_classes: train.n_classes,
    }
}

/// Per-run fault bookkeeping shared by every system's search loop.
///
/// A system asks [`FaultState::next_trial`] before evaluating each
/// candidate. A `Some(fault)` answer means the trial process died:
/// the system calls [`FaultState::charge`] to burn the wasted energy
/// (estimated from the mean duration of the run's successful trials) and
/// skips the candidate. Decisions come from the spec's [`FaultPlan`] keyed
/// by `(run seed, system name, trial index)`, so they are identical at
/// every worker count regardless of evaluation order.
#[derive(Debug, Clone)]
pub struct FaultState {
    injector: Option<FaultInjector>,
    system: SystemId,
    run_seed: u64,
    next_trial: u64,
    n_faults: usize,
    n_ok: usize,
    sum_ok_s: f64,
    wasted_j: f64,
    default_trial_s: f64,
    deadline_s: f64,
}

impl FaultState {
    /// Bookkeeping for one run of `system` under `spec`. Until a trial
    /// succeeds, a killed trial's duration is estimated as 1/20 of the
    /// budget (the search loop's natural trial granularity).
    pub fn new(system: SystemId, spec: &RunSpec) -> FaultState {
        FaultState::with_trial_estimate(system, spec, spec.budget_s / 20.0)
    }

    /// Like [`FaultState::new`] but with an explicit estimate for the
    /// duration of a typical trial — used by budget-free systems (TabPFN),
    /// whose trial cost must not scale with the nominal budget.
    pub fn with_trial_estimate(system: SystemId, spec: &RunSpec, trial_s: f64) -> FaultState {
        let injector = if spec.fault.trial_fault_p() > 0.0 {
            Some(FaultInjector::new(spec.fault))
        } else {
            None
        };
        FaultState {
            injector,
            system,
            run_seed: spec.seed,
            next_trial: 0,
            n_faults: 0,
            n_ok: 0,
            sum_ok_s: 0.0,
            wasted_j: 0.0,
            default_trial_s: trial_s.max(1e-6),
            deadline_s: spec.budget_s,
        }
    }

    /// Decide the fate of the next trial. Always advances the trial
    /// counter, so the decision stream is a pure function of how many
    /// trials the search has attempted.
    pub fn next_trial(&mut self) -> Option<TrialFault> {
        let trial = self.next_trial;
        self.next_trial += 1;
        // The injector sites are keyed by the display name's bytes, so the
        // typed-id migration leaves every historical fault stream intact.
        self.injector
            .as_ref()
            .and_then(|inj| inj.trial_fault(self.run_seed, self.system.as_str(), trial))
    }

    /// Trials attempted so far (successful, faulted, or in flight) — also
    /// the index of the trial currently being decided, which trial spans
    /// use as their label.
    pub fn trials_started(&self) -> u64 {
        self.next_trial
    }

    /// Record the duration of a successful trial; refines the wasted-work
    /// estimate for subsequent kills.
    pub fn observe_ok(&mut self, duration_s: f64) {
        if duration_s.is_finite() && duration_s > 0.0 {
            self.n_ok += 1;
            self.sum_ok_s += duration_s;
        }
    }

    /// Charge the energy a killed trial burned before dying: the fault's
    /// wasted fraction of a typical trial's duration, as active compute,
    /// clamped to the run's budget (kills happen inside the allocation,
    /// pynisher-style).
    pub fn charge(&mut self, tracker: &mut CostTracker, fault: TrialFault) {
        let typical_s = if self.n_ok > 0 {
            self.sum_ok_s / self.n_ok as f64
        } else {
            self.default_trial_s
        };
        let wasted_s = typical_s * fault.wasted_frac;
        let now = tracker.now();
        let target = (now + wasted_s).min(self.deadline_s.max(now));
        let before_j = tracker.measurement().energy.total_joules();
        burn_active_until(tracker, target);
        self.wasted_j += tracker.measurement().energy.total_joules() - before_j;
        self.n_faults += 1;
    }

    /// Trials killed so far.
    pub fn n_faults(&self) -> usize {
        self.n_faults
    }

    /// Trials that completed successfully so far.
    pub fn n_ok(&self) -> usize {
        self.n_ok
    }

    /// Joules burned by killed trials so far.
    pub fn wasted_j(&self) -> f64 {
        self.wasted_j
    }
}

/// The execution-stage tracker for one fit of `id` under `spec`.
///
/// When `spec.trace` is set, a tracer seeded from `(run seed, system)` is
/// attached and a `System` root span plus a `Stage` "execution" child are
/// opened; they close automatically when the system takes the trace at the
/// end of its fit, so the root span covers the tracker's whole lifetime
/// and its energy reconciles **bitwise** with the run's
/// [`Measurement`]. Without `spec.trace` this is exactly
/// `CostTracker::new(spec.device, spec.cores)`.
pub fn execution_tracker(id: SystemId, spec: &RunSpec) -> CostTracker {
    let mut tracker = CostTracker::new(spec.device, spec.cores);
    if spec.trace {
        tracker.enable_tracing(span_id(spec.seed, id.stable_hash()));
        tracker.span_open(SpanKind::System, || id.to_string());
        tracker.span_open(SpanKind::Stage, || "execution".to_string());
    }
    tracker
}

/// Keep searching (charging active compute) until the virtual deadline —
/// used by systems that hold their allocation busy for the whole budget
/// even after our simulation has exhausted its evaluation cap. Charging
/// active work (rather than idling) keeps the power profile faithful.
pub fn burn_active_until(tracker: &mut CostTracker, deadline_s: f64) {
    let remaining = deadline_s - tracker.now();
    if remaining <= 0.0 {
        return;
    }
    let flops = remaining * tracker.device().cpu.scalar_flops_per_core;
    tracker.charge(OpCounts::scalar(flops), ParallelProfile::serial());
}

#[cfg(test)]
mod tests {
    use super::*;
    use green_automl_dataset::TaskSpec;
    use green_automl_ml::{ModelSpec, Pipeline};

    #[test]
    fn constant_predictor_predicts_its_class() {
        let ds = TaskSpec::new("t", 20, 3, 3).generate();
        let p = Predictor::Constant {
            class: 2,
            n_classes: 3,
        };
        let mut t = CostTracker::new(Device::xeon_gold_6132(), 1);
        assert_eq!(p.predict(&ds, &mut t), vec![2; 20]);
        let proba = p.predict_proba(&ds, &mut t);
        assert_eq!(proba.get(0, 2), 1.0);
        assert_eq!(p.n_models(), 0);
    }

    #[test]
    fn single_predictor_reports_costs() {
        let ds = TaskSpec::new("t", 120, 4, 2).generate();
        let mut t = CostTracker::new(Device::xeon_gold_6132(), 1);
        let fitted = Pipeline::new(vec![], ModelSpec::GaussianNb).fit(&ds, &mut t, 0);
        let p = Predictor::Single(fitted);
        assert_eq!(p.n_models(), 1);
        assert!(p.inference_kwh_per_row(Device::xeon_gold_6132(), 1) > 0.0);
        assert!(p.inference_s_per_row(Device::xeon_gold_6132(), 1) > 0.0);
    }

    #[test]
    fn burn_active_fills_to_deadline_with_active_power() {
        let mut t = CostTracker::new(Device::xeon_gold_6132(), 1);
        burn_active_until(&mut t, 10.0);
        assert!((t.now() - 10.0).abs() < 1e-9);
        let active = t.measurement().energy.total_joules();
        let mut idle = CostTracker::new(Device::xeon_gold_6132(), 1);
        idle.idle_for(10.0);
        assert!(active > idle.measurement().energy.total_joules());
        // Idempotent past the deadline.
        burn_active_until(&mut t, 5.0);
        assert!((t.now() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn overshoot_ratio_is_duration_over_budget() {
        let mut t = CostTracker::new(Device::xeon_gold_6132(), 1);
        t.idle_for(20.0);
        let run = AutoMlRun {
            predictor: Predictor::Constant {
                class: 0,
                n_classes: 2,
            },
            execution: t.measurement(),
            n_evaluations: 0,
            budget_s: 10.0,
            n_trial_faults: 0,
            wasted_j: 0.0,
            trace: None,
        };
        assert!((run.overshoot_ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_malformed_specs_with_typed_errors() {
        let ok = RunSpec::single_core(10.0, 1);
        assert_eq!(ok.validate(), Ok(()));

        let mut bad = ok;
        bad.budget_s = 0.0;
        assert_eq!(bad.validate(), Err(RunSpecError::NonPositiveBudget(0.0)));
        bad.budget_s = f64::NAN;
        assert!(matches!(
            bad.validate(),
            Err(RunSpecError::NonPositiveBudget(_))
        ));

        let mut bad = ok;
        bad.cores = 0;
        assert_eq!(bad.validate(), Err(RunSpecError::ZeroCores));

        let mut bad = ok;
        bad.constraints.max_inference_s_per_row = Some(f64::INFINITY);
        assert!(matches!(
            bad.validate(),
            Err(RunSpecError::NonFiniteConstraint(_))
        ));

        let mut bad = ok;
        bad.fault.trial_crash_p = 2.0;
        assert!(matches!(
            bad.validate(),
            Err(RunSpecError::InvalidFaultPlan(_))
        ));

        // Errors render as human-readable messages.
        assert!(RunSpecError::ZeroCores.to_string().contains("cores"));
    }

    #[test]
    fn majority_class_fallback_picks_the_biggest_class() {
        let ds = TaskSpec::new("maj", 200, 4, 3).generate();
        let counts = ds.class_counts();
        let p = majority_class_predictor(&ds);
        match p {
            Predictor::Constant { class, n_classes } => {
                assert_eq!(n_classes, ds.n_classes);
                assert_eq!(
                    counts[class as usize],
                    *counts.iter().max().expect("non-empty"),
                );
            }
            other => panic!("expected a constant predictor, got {other:?}"),
        }
    }

    #[test]
    fn fault_state_charges_wasted_energy_within_the_budget() {
        let spec = RunSpec::single_core(10.0, 3)
            .with_fault(green_automl_energy::fault::FaultPlan::total_failure(7));
        let mut faults = FaultState::new(SystemId::Custom("Test"), &spec);
        let mut t = CostTracker::new(Device::xeon_gold_6132(), 1);
        for _ in 0..4 {
            let f = faults.next_trial().expect("total-failure plan");
            faults.charge(&mut t, f);
        }
        assert_eq!(faults.n_faults(), 4);
        assert!(faults.wasted_j() > 0.0);
        assert!(t.now() <= 10.0 + 1e-9, "kills stay inside the budget");
        // The wasted tally matches the tracker's total exactly: nothing else
        // was charged.
        let total = t.measurement().energy.total_joules();
        assert_eq!(faults.wasted_j().to_bits(), total.to_bits());
    }

    #[test]
    fn fault_state_decisions_do_not_depend_on_call_interleaving() {
        let spec = RunSpec::single_core(10.0, 3)
            .with_fault(green_automl_energy::fault::FaultPlan::chaos(21));
        let seq = |observe: bool| {
            let mut faults = FaultState::new(SystemId::Custom("Interleave"), &spec);
            let mut fates = Vec::new();
            for i in 0..50 {
                let fate = faults.next_trial();
                if observe && fate.is_none() {
                    faults.observe_ok(0.1 * (i + 1) as f64);
                }
                fates.push(fate);
            }
            fates
        };
        // Observing successes refines the energy estimate but must never
        // change which trials die.
        assert_eq!(seq(false), seq(true));
    }
}
