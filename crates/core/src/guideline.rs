//! The paper's Fig. 8 guideline — "picking the most energy-efficient
//! solution depending on the task parameters and requirements" — as an
//! executable decision procedure.

/// What the user optimises for once a real search budget exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Fast/cheap inference at some accuracy cost → FLAML.
    FastInference,
    /// Maximum predictive accuracy → AutoGluon.
    Accuracy,
    /// Pareto-optimal accuracy-vs-inference-energy trade-offs → CAML.
    ParetoEnergyAccuracy,
}

/// Deployment-time traffic the chosen system must serve — our serving-
/// subsystem extension of the Fig. 8 flowchart. The paper's inference-stage
/// findings (O1: ensembles cost ≥10× per prediction; Fig. 4: TabPFN's
/// cumulative-energy crossover at ~26k predictions; Fig. 6: per-instance
/// latency constraints) only bind once traffic numbers are known, so they
/// enter the decision procedure through this profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingProfile {
    /// Sustained request arrival rate, requests per second.
    pub requests_per_s: f64,
    /// p99 per-request latency objective, seconds.
    pub p99_latency_slo_s: f64,
    /// Predictions expected over the deployment's lifetime (Fig. 4's
    /// x-axis).
    pub lifetime_predictions: f64,
    /// Tenants sharing the serving fleet (1 = a dedicated deployment).
    /// A multi-tenant fleet pages model artefacts in and out of
    /// region-capped registries, so deployment footprint becomes a
    /// first-class constraint.
    pub tenants: usize,
}

/// Lifetime-prediction count below which TabPFN's zero-search execution
/// beats searched systems on *total* (execution + inference) energy —
/// the paper's Fig. 4 crossover (~26k predictions vs FLAML at 1 min).
pub const TABPFN_CROSSOVER_PREDICTIONS: f64 = 26_000.0;

/// p99 latency objective at or below which ensemble deployments fall out of
/// the feasible set: the paper's Fig. 6 constraint band (10⁻³–3·10⁻³ s per
/// instance) is where constrained single-model search still finds answers
/// while bagged stacks do not.
pub const TIGHT_SLO_S: f64 = 3.0e-3;

/// Arrival rate beyond which per-request energy dominates the deployment's
/// footprint (Table 4's regime: at ≥10³ req/s a year of serving reaches the
/// 10¹⁰-prediction scale where execution energy is noise).
pub const HEAVY_TRAFFIC_RPS: f64 = 1.0e3;

/// The task profile the flowchart branches on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskProfile {
    /// Access to large CPU resources (≥ one 28-core-class machine for more
    /// than a week) for the development stage.
    pub has_dev_compute: bool,
    /// Will the AutoML system execute on the order of thousands of times?
    /// (The paper's amortisation point is 885 runs.)
    pub many_executions: bool,
    /// Search budget, seconds.
    pub budget_s: f64,
    /// Number of classes (TabPFN's implementation caps at 10).
    pub n_classes: usize,
    /// GPU availability (TabPFN's recommended setting).
    pub gpu_available: bool,
    /// Priority once the budget exceeds ~10 s.
    pub priority: Priority,
    /// Deployment traffic, when the model is destined for a serving layer
    /// (`None` = the paper's original flowchart).
    pub serving: Option<ServingProfile>,
}

/// The flowchart's outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recommendation {
    /// Tune the AutoML system's own parameters in the development stage
    /// (then run the tuned system).
    TuneAutoMlParameters,
    /// TabPFN (with GPU support).
    TabPfn,
    /// CAML.
    Caml,
    /// FLAML.
    Flaml,
    /// AutoGluon.
    AutoGluon,
}

/// Walk the Fig. 8 flowchart.
pub fn recommend(task: &TaskProfile) -> Recommendation {
    // "The first question is whether the user has access to large CPU
    // compute resources ... and intends to perform thousands of AutoML
    // system executions."
    if task.has_dev_compute && task.many_executions {
        return Recommendation::TuneAutoMlParameters;
    }
    // Serving-aware branches (our extension; see `ServingProfile`).
    if let Some(s) = &task.serving {
        // Multi-tenant fleets share region registries with residency caps:
        // every byte of artefact competes with the other tenants' models,
        // and an evicted model is a cold load (Joules) on its next
        // request. Ensemble deployments (AutoGluon's bagged stacks,
        // AutoSklearn's selections) are the heaviest artefacts by an order
        // of magnitude, so a fleet tenant picks a single-model searcher —
        // constraint-aware when the user wants the Pareto front.
        if s.tenants > 1 {
            return if task.priority == Priority::ParetoEnergyAccuracy {
                Recommendation::Caml
            } else {
                Recommendation::Flaml
            };
        }
        // Below the Fig. 4 crossover, skipping the search entirely wins on
        // total energy — TabPFN's execution stage is (near) free and its
        // per-prediction premium never amortises the others' search cost.
        if s.lifetime_predictions < TABPFN_CROSSOVER_PREDICTIONS
            && task.n_classes <= 10
            && task.gpu_available
        {
            return Recommendation::TabPfn;
        }
        // A tight per-request SLO or heavy sustained traffic rules out
        // ensemble deployments (Fig. 6 / O1): pick the single-model
        // searcher, constraint-aware when the user wants the Pareto front.
        if s.p99_latency_slo_s <= TIGHT_SLO_S || s.requests_per_s >= HEAVY_TRAFFIC_RPS {
            return if task.priority == Priority::ParetoEnergyAccuracy {
                Recommendation::Caml
            } else {
                Recommendation::Flaml
            };
        }
    }
    // "For search budgets smaller than 10s, we should use TabPFN (with GPU
    // support) or CAML depending on the number of classes."
    if task.budget_s < 10.0 {
        return if task.n_classes <= 10 && task.gpu_available {
            Recommendation::TabPfn
        } else {
            Recommendation::Caml
        };
    }
    // "If there is a bigger search budget, the AutoML system choice depends
    // on the user's priority."
    match task.priority {
        Priority::FastInference => Recommendation::Flaml,
        Priority::Accuracy => Recommendation::AutoGluon,
        Priority::ParetoEnergyAccuracy => Recommendation::Caml,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> TaskProfile {
        TaskProfile {
            has_dev_compute: false,
            many_executions: false,
            budget_s: 60.0,
            n_classes: 2,
            gpu_available: true,
            priority: Priority::Accuracy,
            serving: None,
        }
    }

    #[test]
    fn short_lived_deployments_skip_the_search() {
        let t = TaskProfile {
            serving: Some(ServingProfile {
                requests_per_s: 10.0,
                p99_latency_slo_s: 0.1,
                lifetime_predictions: 5_000.0,
                tenants: 1,
            }),
            ..base()
        };
        assert_eq!(recommend(&t), Recommendation::TabPfn);
        // Without a GPU (or past the crossover) the branch does not fire.
        let no_gpu = TaskProfile {
            gpu_available: false,
            ..t
        };
        assert_eq!(recommend(&no_gpu), Recommendation::AutoGluon);
        let long_lived = TaskProfile {
            serving: Some(ServingProfile {
                lifetime_predictions: 1.0e8,
                ..t.serving.unwrap()
            }),
            ..base()
        };
        assert_eq!(recommend(&long_lived), Recommendation::AutoGluon);
    }

    #[test]
    fn tight_slo_or_heavy_traffic_rules_out_ensembles() {
        let tight = TaskProfile {
            serving: Some(ServingProfile {
                requests_per_s: 10.0,
                p99_latency_slo_s: 1.0e-3,
                lifetime_predictions: 1.0e9,
                tenants: 1,
            }),
            ..base()
        };
        assert_eq!(recommend(&tight), Recommendation::Flaml);
        let tight_pareto = TaskProfile {
            priority: Priority::ParetoEnergyAccuracy,
            ..tight
        };
        assert_eq!(recommend(&tight_pareto), Recommendation::Caml);
        let heavy = TaskProfile {
            serving: Some(ServingProfile {
                requests_per_s: 5_000.0,
                p99_latency_slo_s: 0.1,
                lifetime_predictions: 1.0e12,
                tenants: 1,
            }),
            ..base()
        };
        assert_eq!(recommend(&heavy), Recommendation::Flaml);
        // Relaxed serving falls through to the paper's flowchart.
        let relaxed = TaskProfile {
            serving: Some(ServingProfile {
                requests_per_s: 10.0,
                p99_latency_slo_s: 0.5,
                lifetime_predictions: 1.0e9,
                tenants: 1,
            }),
            ..base()
        };
        assert_eq!(recommend(&relaxed), Recommendation::AutoGluon);
    }

    #[test]
    fn multi_tenant_fleets_pick_small_footprint_searchers() {
        // The fleet scenario: several tenants share region registries, so
        // the artefact footprint outranks every other serving concern.
        let fleet = TaskProfile {
            serving: Some(ServingProfile {
                requests_per_s: 100.0,
                p99_latency_slo_s: 0.25,
                lifetime_predictions: 1.0e10,
                tenants: 3,
            }),
            ..base()
        };
        assert_eq!(recommend(&fleet), Recommendation::Flaml);
        let fleet_pareto = TaskProfile {
            priority: Priority::ParetoEnergyAccuracy,
            ..fleet
        };
        assert_eq!(recommend(&fleet_pareto), Recommendation::Caml);
        // The branch outranks the TabPFN crossover: even a short-lived
        // deployment pays registry thrash in a shared fleet.
        let short_lived_fleet = TaskProfile {
            serving: Some(ServingProfile {
                lifetime_predictions: 5_000.0,
                ..fleet.serving.unwrap()
            }),
            ..base()
        };
        assert_eq!(recommend(&short_lived_fleet), Recommendation::Flaml);
        // A dedicated deployment (tenants == 1) is untouched by it.
        let dedicated = TaskProfile {
            serving: Some(ServingProfile {
                tenants: 1,
                ..fleet.serving.unwrap()
            }),
            ..base()
        };
        assert_eq!(recommend(&dedicated), Recommendation::AutoGluon);
    }

    #[test]
    fn dev_compute_and_many_runs_means_tuning() {
        let t = TaskProfile {
            has_dev_compute: true,
            many_executions: true,
            ..base()
        };
        assert_eq!(recommend(&t), Recommendation::TuneAutoMlParameters);
        // Either condition alone is not enough.
        let only_compute = TaskProfile {
            has_dev_compute: true,
            ..base()
        };
        assert_ne!(
            recommend(&only_compute),
            Recommendation::TuneAutoMlParameters
        );
    }

    #[test]
    fn tiny_budgets_branch_on_classes_and_gpu() {
        let few = TaskProfile {
            budget_s: 5.0,
            n_classes: 8,
            ..base()
        };
        assert_eq!(recommend(&few), Recommendation::TabPfn);
        let many = TaskProfile {
            budget_s: 5.0,
            n_classes: 100,
            ..base()
        };
        assert_eq!(recommend(&many), Recommendation::Caml);
        let no_gpu = TaskProfile {
            budget_s: 5.0,
            n_classes: 2,
            gpu_available: false,
            ..base()
        };
        assert_eq!(recommend(&no_gpu), Recommendation::Caml);
    }

    #[test]
    fn priorities_map_to_systems() {
        for (prio, want) in [
            (Priority::FastInference, Recommendation::Flaml),
            (Priority::Accuracy, Recommendation::AutoGluon),
            (Priority::ParetoEnergyAccuracy, Recommendation::Caml),
        ] {
            let t = TaskProfile {
                priority: prio,
                ..base()
            };
            assert_eq!(recommend(&t), want, "{prio:?}");
        }
    }

    #[test]
    fn every_branch_is_reachable() {
        use std::collections::BTreeSet;
        let mut seen: BTreeSet<String> = BTreeSet::new();
        for dev in [false, true] {
            for many in [false, true] {
                for budget in [5.0, 60.0] {
                    for classes in [2usize, 50] {
                        for gpu in [false, true] {
                            for prio in [
                                Priority::FastInference,
                                Priority::Accuracy,
                                Priority::ParetoEnergyAccuracy,
                            ] {
                                let t = TaskProfile {
                                    has_dev_compute: dev,
                                    many_executions: many,
                                    budget_s: budget,
                                    n_classes: classes,
                                    gpu_available: gpu,
                                    priority: prio,
                                    serving: None,
                                };
                                seen.insert(format!("{:?}", recommend(&t)));
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(seen.len(), 5, "all five outcomes reachable: {seen:?}");
    }
}
