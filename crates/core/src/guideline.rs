//! The paper's Fig. 8 guideline — "picking the most energy-efficient
//! solution depending on the task parameters and requirements" — as an
//! executable decision procedure.

/// What the user optimises for once a real search budget exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Fast/cheap inference at some accuracy cost → FLAML.
    FastInference,
    /// Maximum predictive accuracy → AutoGluon.
    Accuracy,
    /// Pareto-optimal accuracy-vs-inference-energy trade-offs → CAML.
    ParetoEnergyAccuracy,
}

/// The task profile the flowchart branches on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskProfile {
    /// Access to large CPU resources (≥ one 28-core-class machine for more
    /// than a week) for the development stage.
    pub has_dev_compute: bool,
    /// Will the AutoML system execute on the order of thousands of times?
    /// (The paper's amortisation point is 885 runs.)
    pub many_executions: bool,
    /// Search budget, seconds.
    pub budget_s: f64,
    /// Number of classes (TabPFN's implementation caps at 10).
    pub n_classes: usize,
    /// GPU availability (TabPFN's recommended setting).
    pub gpu_available: bool,
    /// Priority once the budget exceeds ~10 s.
    pub priority: Priority,
}

/// The flowchart's outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recommendation {
    /// Tune the AutoML system's own parameters in the development stage
    /// (then run the tuned system).
    TuneAutoMlParameters,
    /// TabPFN (with GPU support).
    TabPfn,
    /// CAML.
    Caml,
    /// FLAML.
    Flaml,
    /// AutoGluon.
    AutoGluon,
}

/// Walk the Fig. 8 flowchart.
pub fn recommend(task: &TaskProfile) -> Recommendation {
    // "The first question is whether the user has access to large CPU
    // compute resources ... and intends to perform thousands of AutoML
    // system executions."
    if task.has_dev_compute && task.many_executions {
        return Recommendation::TuneAutoMlParameters;
    }
    // "For search budgets smaller than 10s, we should use TabPFN (with GPU
    // support) or CAML depending on the number of classes."
    if task.budget_s < 10.0 {
        return if task.n_classes <= 10 && task.gpu_available {
            Recommendation::TabPfn
        } else {
            Recommendation::Caml
        };
    }
    // "If there is a bigger search budget, the AutoML system choice depends
    // on the user's priority."
    match task.priority {
        Priority::FastInference => Recommendation::Flaml,
        Priority::Accuracy => Recommendation::AutoGluon,
        Priority::ParetoEnergyAccuracy => Recommendation::Caml,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> TaskProfile {
        TaskProfile {
            has_dev_compute: false,
            many_executions: false,
            budget_s: 60.0,
            n_classes: 2,
            gpu_available: true,
            priority: Priority::Accuracy,
        }
    }

    #[test]
    fn dev_compute_and_many_runs_means_tuning() {
        let t = TaskProfile {
            has_dev_compute: true,
            many_executions: true,
            ..base()
        };
        assert_eq!(recommend(&t), Recommendation::TuneAutoMlParameters);
        // Either condition alone is not enough.
        let only_compute = TaskProfile {
            has_dev_compute: true,
            ..base()
        };
        assert_ne!(
            recommend(&only_compute),
            Recommendation::TuneAutoMlParameters
        );
    }

    #[test]
    fn tiny_budgets_branch_on_classes_and_gpu() {
        let few = TaskProfile {
            budget_s: 5.0,
            n_classes: 8,
            ..base()
        };
        assert_eq!(recommend(&few), Recommendation::TabPfn);
        let many = TaskProfile {
            budget_s: 5.0,
            n_classes: 100,
            ..base()
        };
        assert_eq!(recommend(&many), Recommendation::Caml);
        let no_gpu = TaskProfile {
            budget_s: 5.0,
            n_classes: 2,
            gpu_available: false,
            ..base()
        };
        assert_eq!(recommend(&no_gpu), Recommendation::Caml);
    }

    #[test]
    fn priorities_map_to_systems() {
        for (prio, want) in [
            (Priority::FastInference, Recommendation::Flaml),
            (Priority::Accuracy, Recommendation::AutoGluon),
            (Priority::ParetoEnergyAccuracy, Recommendation::Caml),
        ] {
            let t = TaskProfile {
                priority: prio,
                ..base()
            };
            assert_eq!(recommend(&t), want, "{prio:?}");
        }
    }

    #[test]
    fn every_branch_is_reachable() {
        use std::collections::BTreeSet;
        let mut seen: BTreeSet<String> = BTreeSet::new();
        for dev in [false, true] {
            for many in [false, true] {
                for budget in [5.0, 60.0] {
                    for classes in [2usize, 50] {
                        for gpu in [false, true] {
                            for prio in [
                                Priority::FastInference,
                                Priority::Accuracy,
                                Priority::ParetoEnergyAccuracy,
                            ] {
                                let t = TaskProfile {
                                    has_dev_compute: dev,
                                    many_executions: many,
                                    budget_s: budget,
                                    n_classes: classes,
                                    gpu_available: gpu,
                                    priority: prio,
                                };
                                seen.insert(format!("{:?}", recommend(&t)));
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(seen.len(), 5, "all five outcomes reachable: {seen:?}");
    }
}
