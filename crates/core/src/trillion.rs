//! The trillion-prediction workload estimator (paper §3.6 / Table 4).
//!
//! "Wu et al. describe that Meta makes trillions of predictions per day" —
//! at that scale, per-prediction inference energy differences become
//! utility-bill and CO₂ numbers. Conversions use the paper's constants:
//! 0.20 €/kWh (average European electricity price) and 0.222 kg CO₂/kWh
//! (German grid).

use green_automl_energy::{EmissionsEstimate, GridIntensity};

/// One trillion predictions.
pub const TRILLION: f64 = 1e12;

/// The cost of serving `TRILLION` predictions with one deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct TrillionCost {
    /// Deployment (system) name.
    pub system: String,
    /// Energy, kWh.
    pub kwh: f64,
    /// Emissions, kg CO₂ (German grid).
    pub kg_co2: f64,
    /// Cost, €.
    pub cost_eur: f64,
}

/// Compute the Table 4 row for a deployment with the given per-prediction
/// inference energy.
pub fn trillion_prediction_cost(system: &str, inference_kwh_per_row: f64) -> TrillionCost {
    assert!(
        inference_kwh_per_row.is_finite() && inference_kwh_per_row >= 0.0,
        "per-row energy must be non-negative"
    );
    let kwh = inference_kwh_per_row * TRILLION;
    let e = EmissionsEstimate::from_kwh(kwh, GridIntensity::GERMANY);
    TrillionCost {
        system: system.to_string(),
        kwh,
        kg_co2: e.kg_co2,
        cost_eur: e.cost_eur,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_table4_tabpfn_row() {
        // TabPFN's published row: 404,649 kWh → 89,832 kg CO2 → 80,930 EUR
        // from 4.04649e-7 kWh/prediction.
        let row = trillion_prediction_cost("TabPFN", 4.04649e-7);
        assert!((row.kwh - 404_649.0).abs() < 1.0);
        assert!((row.kg_co2 - 89_832.0).abs() < 1.0);
        assert!((row.cost_eur - 80_929.8).abs() < 0.5);
    }

    #[test]
    fn ordering_follows_per_row_energy() {
        let cheap = trillion_prediction_cost("FLAML", 7.62e-10);
        let costly = trillion_prediction_cost("AutoGluon", 4.3887e-8);
        assert!(costly.kwh > cheap.kwh * 50.0);
        assert!((cheap.kwh - 762.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_energy_panics() {
        let _ = trillion_prediction_cost("x", -1.0);
    }
}
