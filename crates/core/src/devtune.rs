//! The development-stage optimiser of the paper's §2.5 (Fig. 2).
//!
//! To tune CAML's AutoML-system parameters for one search budget:
//!
//! 1. cluster the candidate dataset pool by metadata features (k-means) and
//!    keep the dataset closest to each centroid — the *top-k representative
//!    datasets*;
//! 2. run Bayesian optimisation over the AutoML-parameter space; each trial
//!    runs tuned-CAML and default-CAML (`runs_per_eval` times each, "to
//!    reduce the variance without introducing excessive computation
//!    overhead") on the representatives and scores the *relative
//!    improvement* `(acc_ω − acc_default) / max(acc_ω, acc_default)`
//!    averaged across datasets;
//! 3. prune trials whose running mean falls below the median of completed
//!    trials at the same dataset index (median pruning).
//!
//! Everything the tuner executes is metered: the summed execution energy is
//! the **development-stage cost** reported in Fig. 7 / Tables 8–9.

use crate::benchmark::{run_once, BenchmarkOptions};
use green_automl_dataset::{DatasetMeta, MaterializeOptions, MetaFeatures};
use green_automl_energy::{Measurement, OpCounts};
use green_automl_optim::{kmeans, representatives, BayesOpt, Config, ConfigSpace, MedianPruner};
use green_automl_systems::pipespace::{Bounds, Family};
use green_automl_systems::{Caml, CamlParams, RunSpec};

/// Tuner configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DevTuneOptions {
    /// The search budget (seconds) the AutoML parameters are tuned for —
    /// §2.5 notes the result is budget-specific.
    pub budget_s: f64,
    /// Representative datasets kept (paper: top-20 of 124).
    pub top_k: usize,
    /// Meta-BO iterations (paper: 300).
    pub bo_iters: usize,
    /// CAML repetitions per (trial, dataset) — paper: 2.
    pub runs_per_eval: usize,
    /// Dataset materialisation profile for the tuning runs.
    pub materialize: MaterializeOptions,
    /// Seed.
    pub seed: u64,
}

impl Default for DevTuneOptions {
    fn default() -> Self {
        DevTuneOptions {
            budget_s: 10.0,
            top_k: 20,
            bo_iters: 30,
            runs_per_eval: 2,
            materialize: MaterializeOptions::benchmark(),
            seed: 0,
        }
    }
}

/// The tuning result.
#[derive(Debug, Clone)]
pub struct DevTuneOutcome {
    /// The winning AutoML-system parameters.
    pub params: CamlParams,
    /// Total development-stage cost (summed over every CAML run the tuner
    /// executed, sequentially).
    pub development: Measurement,
    /// Relative-improvement meta-score of the winner.
    pub best_meta_score: f64,
    /// Mean tuned-CAML balanced accuracy on the representatives.
    pub best_accuracy: f64,
    /// Trials evaluated.
    pub n_trials: usize,
    /// Trials stopped early by median pruning.
    pub n_pruned: usize,
    /// Names of the representative datasets.
    pub representatives: Vec<String>,
}

/// The §2.5 tuner.
#[derive(Debug, Clone, Copy, Default)]
pub struct DevTuner;

/// The meta-space over CAML's AutoML-system parameters: family-inclusion
/// flags, the scaler flag, search-space bound ceilings, and the six system
/// parameters of §3.7.
pub fn meta_space() -> ConfigSpace {
    let mut s = ConfigSpace::new();
    for f in Family::all() {
        s = s.add_cat(f.name(), 2);
    }
    s.add_cat("scalers", 2)
        .add_int("depth_hi", 4, 18, false)
        .add_int("trees_hi", 8, 96, true)
        .add_int("gb_rounds_hi", 8, 60, true)
        .add_int("epochs_hi", 8, 45, false)
        .add_float("holdout_frac", 0.1, 0.45, false)
        .add_float("eval_fraction", 0.05, 0.3, false)
        .add_float("sampling_frac", 0.2, 1.0, false)
        .add_cat("refit", 2)
        .add_cat("resample_validation", 2)
        .add_cat("incremental_training", 2)
}

/// Decode a meta-configuration into [`CamlParams`].
pub fn decode_meta(c: &Config) -> CamlParams {
    let all = Family::all();
    let mut families: Vec<Family> = all
        .iter()
        .enumerate()
        .filter(|&(i, _)| c.cat(i) == 1)
        .map(|(_, &f)| f)
        .collect();
    if families.is_empty() {
        // An empty space is not executable; fall back to the two strongest
        // tabular families.
        families = vec![Family::GradientBoosting, Family::RandomForest];
    }
    let base = 9;
    let bounds = Bounds {
        depth: (2, c.int(base + 1).max(3)),
        n_trees: (4, c.int(base + 2).max(5)),
        gb_rounds: (5, c.int(base + 3).max(6)),
        epochs: (5, c.int(base + 4).max(6)),
        ..Bounds::default()
    };
    CamlParams {
        families,
        scalers: c.cat(base) == 1,
        bounds,
        holdout_frac: c.float(base + 5),
        eval_fraction: c.float(base + 6),
        sampling_frac: c.float(base + 7),
        refit: c.cat(base + 8) == 1,
        resample_validation: c.cat(base + 9) == 1,
        incremental_training: c.cat(base + 10) == 1,
        // Extensions are not part of the paper's tuned surface.
        early_stop_patience: None,
        energy_weight: 0.0,
    }
}

fn add_measurement(total: &mut Measurement, m: &Measurement) {
    total.duration_s += m.duration_s;
    total.energy.package_j += m.energy.package_j;
    total.energy.dram_j += m.energy.dram_j;
    total.energy.gpu_j += m.energy.gpu_j;
    total.ops += m.ops;
}

impl DevTuner {
    /// Pick the top-k representative datasets of `pool` by k-means over
    /// metadata features. Returns indices into `pool`.
    pub fn select_representatives(pool: &[DatasetMeta], k: usize, seed: u64) -> Vec<usize> {
        assert!(k >= 1 && k <= pool.len(), "k out of range");
        let feats: Vec<Vec<f64>> = pool
            .iter()
            .map(|m| MetaFeatures::from_meta(m).as_vec())
            .collect();
        let km = kmeans(&feats, k, 25, seed);
        representatives(&feats, &km)
    }

    /// Run the full tuning procedure.
    pub fn tune(pool: &[DatasetMeta], opts: &DevTuneOptions) -> DevTuneOutcome {
        assert!(
            opts.top_k >= 1 && opts.top_k <= pool.len(),
            "top_k out of range"
        );
        assert!(opts.bo_iters >= 1 && opts.runs_per_eval >= 1);

        let rep_idx = Self::select_representatives(pool, opts.top_k, opts.seed);
        let reps: Vec<DatasetMeta> = rep_idx.iter().map(|&i| pool[i]).collect();

        let mut development = Measurement::default();
        // Clustering bookkeeping is development work too.
        development.ops += OpCounts::scalar((pool.len() * opts.top_k * 6 * 25) as f64);

        let bench_opts = BenchmarkOptions {
            materialize: opts.materialize,
            runs: 1,
            test_frac: 0.34,
            parallelism: 1,
            eval_cache: true,
        };

        // Baseline: default CAML per (dataset, run-seed), cached.
        let default_caml = Caml::default();
        let mut baseline_acc: Vec<Vec<f64>> = Vec::with_capacity(reps.len());
        for meta in &reps {
            let mut per_run = Vec::with_capacity(opts.runs_per_eval);
            for r in 0..opts.runs_per_eval {
                let spec = RunSpec::single_core(opts.budget_s, opts.seed ^ (r as u64 * 7919));
                let p = run_once(&default_caml, meta, &spec, &bench_opts);
                add_measurement(&mut development, &p.execution);
                per_run.push(p.balanced_accuracy);
            }
            baseline_acc.push(per_run);
        }

        let mut bo = BayesOpt::new(meta_space(), opts.seed ^ 0xde7);
        bo.n_init = (opts.bo_iters / 4).clamp(3, 10);
        let mut pruner = MedianPruner::new(1, 4);
        let mut best: Option<(f64, f64, CamlParams)> = None; // (meta, acc, params)
        let mut n_pruned = 0usize;

        for trial in 0..opts.bo_iters {
            let (config, ops) = bo.suggest();
            development.ops += ops;
            let params = decode_meta(&config);
            let system = Caml::tuned(params.clone());

            let mut rel_sum = 0.0;
            let mut acc_sum = 0.0;
            let mut trajectory = Vec::with_capacity(reps.len());
            let mut pruned = false;
            for (di, meta) in reps.iter().enumerate() {
                let mut tuned_mean = 0.0;
                for r in 0..opts.runs_per_eval {
                    let spec = RunSpec::single_core(
                        opts.budget_s,
                        opts.seed ^ (r as u64 * 7919) ^ (trial as u64) << 16,
                    );
                    let p = run_once(&system, meta, &spec, &bench_opts);
                    add_measurement(&mut development, &p.execution);
                    tuned_mean += p.balanced_accuracy;
                }
                tuned_mean /= opts.runs_per_eval as f64;
                let base_mean: f64 =
                    baseline_acc[di].iter().sum::<f64>() / opts.runs_per_eval as f64;
                let rel = (tuned_mean - base_mean) / tuned_mean.max(base_mean).max(1e-9);
                rel_sum += rel;
                acc_sum += tuned_mean;
                let running = rel_sum / (di + 1) as f64;
                trajectory.push(running);
                if pruner.should_prune(di, running) {
                    pruned = true;
                    n_pruned += 1;
                    break;
                }
            }
            let evaluated = trajectory.len();
            let meta_score = rel_sum / evaluated.max(1) as f64;
            bo.observe(config, meta_score);
            if !pruned {
                pruner.record_completed(&trajectory);
                let acc = acc_sum / evaluated.max(1) as f64;
                if best.as_ref().is_none_or(|(s, _, _)| meta_score > *s) {
                    best = Some((meta_score, acc, params));
                }
            }
        }

        let (best_meta_score, best_accuracy, params) =
            best.unwrap_or((0.0, 0.0, CamlParams::default()));
        DevTuneOutcome {
            params,
            development,
            best_meta_score,
            best_accuracy,
            n_trials: opts.bo_iters,
            n_pruned,
            representatives: reps.iter().map(|m| m.name.to_string()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use green_automl_dataset::dev_binary_pool;
    use green_automl_energy::rng::SplitMix64;

    fn tiny_opts() -> DevTuneOptions {
        DevTuneOptions {
            budget_s: 5.0,
            top_k: 3,
            bo_iters: 4,
            runs_per_eval: 1,
            materialize: MaterializeOptions::tiny(),
            seed: 0,
        }
    }

    #[test]
    fn representatives_are_distinct_and_spread() {
        let pool = dev_binary_pool();
        let reps = DevTuner::select_representatives(&pool, 10, 0);
        let set: std::collections::BTreeSet<usize> = reps.iter().copied().collect();
        assert_eq!(set.len(), 10);
        // Representatives should span small and large datasets.
        let sizes: Vec<usize> = reps.iter().map(|&i| pool[i].instances).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(*max > *min * 10, "spread too small: {sizes:?}");
    }

    #[test]
    fn meta_space_roundtrip() {
        let space = meta_space();
        assert_eq!(space.len(), 9 + 1 + 4 + 3 + 3);
        let mut rng = SplitMix64::seed_from_u64(0);
        for _ in 0..50 {
            let c = space.sample(&mut rng);
            let p = decode_meta(&c);
            assert!(!p.families.is_empty());
            assert!(p.bounds.depth.1 >= 3);
            assert!((0.1..=0.45).contains(&p.holdout_frac));
        }
    }

    #[test]
    fn empty_family_selection_falls_back() {
        let space = meta_space();
        let mut values = vec![0.0; space.len()];
        // All family flags zero.
        values[10] = 10.0; // depth_hi
        values[11] = 16.0;
        values[12] = 16.0;
        values[13] = 16.0;
        values[14] = 0.3;
        values[15] = 0.1;
        values[16] = 0.8;
        let p = decode_meta(&Config::from_values(values));
        assert_eq!(p.families.len(), 2);
    }

    #[test]
    fn tuner_runs_end_to_end_and_meters_development() {
        let pool = dev_binary_pool();
        let out = DevTuner::tune(&pool[..12], &tiny_opts());
        assert_eq!(out.representatives.len(), 3);
        assert_eq!(out.n_trials, 4);
        assert!(
            out.development.kwh() > 0.0,
            "development energy must be metered"
        );
        assert!(out.development.duration_s > 0.0);
        assert!(!out.params.families.is_empty());
        assert!(out.best_accuracy > 0.0);
    }

    #[test]
    fn more_iterations_cost_more_development_energy() {
        let pool = dev_binary_pool();
        let cheap = DevTuner::tune(&pool[..12], &tiny_opts());
        let mut more = tiny_opts();
        more.bo_iters = 8;
        let costly = DevTuner::tune(&pool[..12], &more);
        assert!(
            costly.development.kwh() > cheap.development.kwh(),
            "8 iters {:.4e} should cost more than 4 iters {:.4e}",
            costly.development.kwh(),
            cheap.development.kwh()
        );
    }
}
