//! Work-queue execution of independent benchmark cells.
//!
//! The paper's protocol is a 39-dataset × 7-system × 4-budget × N-run grid
//! that took 28 compute-days on a 28-core Xeon — yet every cell is
//! independent: it owns its own [`CostTracker`](green_automl_energy::CostTracker),
//! so virtual-energy accounting cannot observe which thread (or in what
//! order) a cell ran. This module exploits that: [`run_indexed`] fans tasks
//! out over `std::thread` workers pulling indices from a shared atomic
//! counter, and reassembles results **in task-index order**, so a parallel
//! grid is byte-identical to the serial one.
//!
//! [`DatasetCache`] removes the other serial-loop waste: `run_once`
//! materializes its dataset per cell, a 7-system × 4-budget redundancy per
//! (dataset, seed). The cache synthesizes each (meta, options, seed)
//! combination once and shares it via `Arc`.

use green_automl_dataset::{Dataset, DatasetMeta, MaterializeOptions};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Resolve a `parallelism` knob: `0` means one worker per available core,
/// any other value is used as given.
pub fn resolve_parallelism(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Run `task(0..n_tasks)` on `workers` threads and return the results in
/// index order — the parallel schedule is unobservable in the output.
///
/// `workers == 1` (or a single task) runs inline with no thread overhead,
/// which is the reference serial schedule the equivalence tests compare
/// against.
pub fn run_indexed<T, F>(n_tasks: usize, workers: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(workers >= 1, "need at least one worker");
    if workers == 1 || n_tasks <= 1 {
        return (0..n_tasks).map(task).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n_tasks).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers.min(n_tasks) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_tasks {
                    break;
                }
                let result = task(i);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("scope joined every worker, so every slot is filled")
        })
        .collect()
}

/// What became of one grid cell: a result, or the panic that killed it.
///
/// A poisoned cell must not abort the grid — 28 compute-days of siblings
/// may be riding on the same run. [`run_indexed_outcomes`] converts each
/// task panic into a recorded `Failed` so the caller can report it and
/// keep every other cell.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome<T> {
    /// The task completed and produced a value.
    Ok(T),
    /// The task panicked; the payload is the panic message (or a
    /// placeholder when the payload was not a string).
    Failed(String),
}

impl<T> CellOutcome<T> {
    /// The success value, if any.
    pub fn ok(self) -> Option<T> {
        match self {
            CellOutcome::Ok(v) => Some(v),
            CellOutcome::Failed(_) => None,
        }
    }

    /// `true` when the task panicked.
    pub fn is_failed(&self) -> bool {
        matches!(self, CellOutcome::Failed(_))
    }
}

/// Render a panic payload as a human-readable message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one cell body under [`catch_unwind`], converting a panic into
/// [`CellOutcome::Failed`] with its message.
pub fn catch_cell<T>(f: impl FnOnce() -> T) -> CellOutcome<T> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => CellOutcome::Ok(v),
        Err(payload) => CellOutcome::Failed(panic_message(payload)),
    }
}

/// [`run_indexed`], but each task runs under [`catch_unwind`]: a panicking
/// task yields [`CellOutcome::Failed`] with the panic message instead of
/// tearing down the whole grid. Outcomes are returned in task-index order,
/// byte-identical at every worker count, exactly like `run_indexed`.
pub fn run_indexed_outcomes<T, F>(n_tasks: usize, workers: usize, task: F) -> Vec<CellOutcome<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed(n_tasks, workers, |i| catch_cell(|| task(i)))
}

/// Cache key: the dataset identity plus everything `materialize` reads.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    openml_id: u32,
    name: &'static str,
    instances: usize,
    features: usize,
    classes: usize,
    max_rows: usize,
    min_rows_per_class: usize,
    max_features: usize,
    max_row_frac_bits: u64,
    seed: u64,
}

impl CacheKey {
    fn new(meta: &DatasetMeta, opts: &MaterializeOptions) -> CacheKey {
        CacheKey {
            openml_id: meta.openml_id,
            name: meta.name,
            instances: meta.instances,
            features: meta.features,
            classes: meta.classes,
            max_rows: opts.max_rows,
            min_rows_per_class: opts.min_rows_per_class,
            max_features: opts.max_features,
            max_row_frac_bits: opts.max_row_frac.to_bits(),
            seed: opts.seed,
        }
    }
}

/// A concurrent, deterministic dataset materialization cache.
///
/// Each (meta, options, seed) combination is synthesized exactly once —
/// workers needing the same dataset block on its `OnceLock` rather than
/// duplicating the synthesis, while workers needing *different* datasets
/// proceed in parallel (the map lock is only held for the lookup).
#[derive(Debug, Default)]
pub struct DatasetCache {
    map: Mutex<HashMap<CacheKey, Arc<OnceLock<Arc<Dataset>>>>>,
}

impl DatasetCache {
    /// An empty cache.
    pub fn new() -> DatasetCache {
        DatasetCache::default()
    }

    /// Materialize `meta` under `opts`, or return the shared copy if an
    /// identical materialization already ran.
    pub fn materialize(&self, meta: &DatasetMeta, opts: &MaterializeOptions) -> Arc<Dataset> {
        let key = CacheKey::new(meta, opts);
        let slot = {
            let mut map = self.map.lock().expect("dataset cache poisoned");
            Arc::clone(map.entry(key).or_default())
        };
        Arc::clone(slot.get_or_init(|| Arc::new(meta.materialize(opts))))
    }

    /// Number of distinct materializations performed so far.
    pub fn len(&self) -> usize {
        self.map.lock().expect("dataset cache poisoned").len()
    }

    /// `true` if nothing has been materialized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use green_automl_dataset::amlb39;

    #[test]
    fn serial_and_parallel_schedules_agree() {
        let squares: Vec<usize> = run_indexed(100, 1, |i| i * i);
        for workers in [2, 4, 8] {
            assert_eq!(run_indexed(100, workers, |i| i * i), squares);
        }
    }

    #[test]
    fn more_workers_than_tasks_is_fine() {
        assert_eq!(run_indexed(3, 16, |i| i), vec![0, 1, 2]);
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn zero_parallelism_resolves_to_all_cores() {
        assert!(resolve_parallelism(0) >= 1);
        assert_eq!(resolve_parallelism(3), 3);
    }

    #[test]
    fn a_panicking_task_is_recorded_not_propagated() {
        let outcomes = run_indexed_outcomes(5, 1, |i| {
            if i == 2 {
                panic!("cell {i} poisoned");
            }
            i * 10
        });
        assert_eq!(outcomes[0], CellOutcome::Ok(0));
        assert_eq!(outcomes[2], CellOutcome::Failed("cell 2 poisoned".into()));
        assert_eq!(outcomes[4], CellOutcome::Ok(40));
        assert_eq!(outcomes.iter().filter(|o| o.is_failed()).count(), 1);
    }

    #[test]
    fn outcomes_agree_at_every_worker_count() {
        let reference = run_indexed_outcomes(40, 1, |i| {
            if i % 7 == 3 {
                panic!("unlucky {i}");
            }
            i
        });
        for workers in [2, 4, 8] {
            let got = run_indexed_outcomes(40, workers, |i| {
                if i % 7 == 3 {
                    panic!("unlucky {i}");
                }
                i
            });
            assert_eq!(got, reference);
        }
    }

    #[test]
    fn cache_materializes_each_combination_once() {
        let cache = DatasetCache::new();
        let metas = amlb39();
        let meta = &metas[38];
        let opts = MaterializeOptions::tiny();
        let a = cache.materialize(meta, &opts);
        let b = cache.materialize(meta, &opts);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one Arc");
        assert_eq!(cache.len(), 1);

        let other_seed = MaterializeOptions { seed: 1, ..opts };
        let c = cache.materialize(meta, &other_seed);
        assert!(!Arc::ptr_eq(&a, &c), "different seed is a different entry");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cached_dataset_equals_direct_materialization() {
        let cache = DatasetCache::new();
        let metas = amlb39();
        let meta = &metas[38];
        let opts = MaterializeOptions::tiny();
        assert_eq!(*cache.materialize(meta, &opts), meta.materialize(&opts));
    }

    #[test]
    fn concurrent_lookups_share_one_materialization() {
        let cache = DatasetCache::new();
        let metas = amlb39();
        let meta = metas[38];
        let opts = MaterializeOptions::tiny();
        let datasets = run_indexed(16, 8, |_| cache.materialize(&meta, &opts));
        assert_eq!(cache.len(), 1);
        for ds in &datasets[1..] {
            assert!(Arc::ptr_eq(&datasets[0], ds));
        }
    }
}
