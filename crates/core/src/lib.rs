//! # green-automl-core
//!
//! The paper's primary contribution, as a library: a **holistic
//! three-stage energy benchmark for AutoML on tabular data**.
//!
//! * [`stages`] — the Green-AutoML stage taxonomy (development / execution /
//!   inference, Tornede et al. 2023) and holistic per-run reports;
//! * [`benchmark`] — the measurement protocol of §3.1/§3.2: run a system on
//!   a dataset under a search budget, score balanced accuracy on the 34%
//!   test split, and meter execution and inference energy separately;
//! * [`devtune`] — the §2.5 development-stage optimiser: k-means
//!   representative-dataset selection, Bayesian optimisation over CAML's
//!   AutoML-system parameters, median pruning, and the relative-improvement
//!   meta-objective;
//! * [`executor`] — the work-queue scheduler and dataset-materialization
//!   cache that let [`benchmark::run_grid`] use every core while staying
//!   byte-identical to the serial run, plus the per-cell panic isolation
//!   ([`executor::run_indexed_outcomes`]) behind the grid's fault
//!   tolerance;
//! * [`evalcache`] — the grid-wide content-addressed evaluation memo table
//!   whose hits skip real compute but replay the recorded virtual-energy
//!   charges, keeping every artefact byte-identical with the cache on or
//!   off;
//! * [`cluster`] — the simulated multi-host executor: grid cells sharded
//!   across hosts with per-host device profiles and clocks, network
//!   transfer costs in virtual Joules, host-level chaos (crash /
//!   straggler / partition) with retry, speculation, and shard
//!   checkpoints — while the grid artefact stays byte-identical at every
//!   (hosts × jobs) shape;
//! * [`checkpoint`] — crash-safe per-cell persistence so a killed grid
//!   run resumes from its completed cells;
//! * [`amortize`] — the cross-stage break-even analyses (Fig. 4's
//!   prediction-count crossover, §3.7's 885-run development amortisation);
//! * [`trillion`] — the Table 4 trillion-prediction cost estimator;
//! * [`guideline`] — the Fig. 8 system-selection flowchart as an executable
//!   decision procedure.

pub mod amortize;
pub mod benchmark;
pub mod checkpoint;
pub mod cluster;
pub mod devtune;
pub mod evalcache;
pub mod executor;
pub mod guideline;
pub mod stages;
pub mod trillion;

/// The workspace's deterministic PRNG (re-exported from
/// `green-automl-energy` so hermetic builds need no external `rand`).
pub use green_automl_energy::rng;

/// Seeded, deterministic fault injection (re-exported from
/// `green-automl-energy` so the AutoML systems and the serving layer share
/// one decision oracle without a dependency cycle).
pub use green_automl_energy::fault;

pub use amortize::{crossover_predictions, runs_to_amortize, total_kwh};
pub use benchmark::{
    average_points, run_grid, run_grid_checked, BenchmarkOptions, BenchmarkPoint, BudgetGrid,
    CellFailure, GridRun,
};
pub use checkpoint::Checkpoint;
pub use cluster::{
    run_grid_cluster, ClusterGridRun, ClusterOptions, ClusterReport, HostSpec, HostStats,
    NetworkModel,
};
pub use devtune::{DevTuneOptions, DevTuneOutcome, DevTuner};
pub use evalcache::EvalCache;
pub use executor::{run_indexed, run_indexed_outcomes, CellOutcome, DatasetCache};
pub use guideline::{recommend, Priority, Recommendation, ServingProfile, TaskProfile};
pub use stages::{HolisticReport, Stage, StageMeasurement};
pub use trillion::{trillion_prediction_cost, TrillionCost, TRILLION};
