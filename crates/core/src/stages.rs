//! The Green-AutoML stage taxonomy and holistic reports.
//!
//! Tornede et al. (2023) — and the paper following them — split AutoML's
//! energy footprint into three stages: **developing** an AutoML system,
//! **executing** it on a dataset, and **predicting** with the resulting
//! pipeline. The paper's thesis is that these stages trade off against each
//! other and must be reported together.

use green_automl_energy::Measurement;

/// A Green-AutoML lifecycle stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Building/configuring the AutoML system itself (meta-learning runs,
    /// parameter tuning, "graduate student descent").
    Development,
    /// Running the AutoML system on a dataset (search + ensembling).
    Execution,
    /// Predicting with the deployed pipeline.
    Inference,
}

impl Stage {
    /// All stages in lifecycle order.
    pub fn all() -> [Stage; 3] {
        [Stage::Development, Stage::Execution, Stage::Inference]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Development => "development",
            Stage::Execution => "execution",
            Stage::Inference => "inference",
        }
    }
}

/// A measurement attributed to one stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageMeasurement {
    /// Which stage consumed the energy.
    pub stage: Stage,
    /// What was consumed.
    pub measurement: Measurement,
}

/// A holistic per-deployment report combining all three stages.
///
/// `development_kwh` is the (possibly amortised) share of system-development
/// energy attributed to this deployment; `inference_kwh_per_prediction`
/// scales with usage, which is why no single number can summarise a
/// deployment — the paper's Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HolisticReport {
    /// Development-stage energy attributed to this deployment, kWh.
    pub development_kwh: f64,
    /// Execution-stage energy of the AutoML run, kWh.
    pub execution_kwh: f64,
    /// Inference energy per prediction, kWh.
    pub inference_kwh_per_prediction: f64,
    /// Test balanced accuracy of the deployed pipeline.
    pub balanced_accuracy: f64,
}

impl HolisticReport {
    /// Total energy after `n_predictions` predictions, kWh.
    pub fn total_kwh(&self, n_predictions: f64) -> f64 {
        assert!(
            n_predictions >= 0.0,
            "prediction count must be non-negative"
        );
        self.development_kwh
            + self.execution_kwh
            + self.inference_kwh_per_prediction * n_predictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_are_ordered_and_named() {
        let names: Vec<&str> = Stage::all().iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["development", "execution", "inference"]);
    }

    #[test]
    fn total_scales_with_predictions() {
        let r = HolisticReport {
            development_kwh: 21.0,
            execution_kwh: 0.01,
            inference_kwh_per_prediction: 1e-6,
            balanced_accuracy: 0.8,
        };
        assert!((r.total_kwh(0.0) - 21.01).abs() < 1e-12);
        assert!((r.total_kwh(1e6) - 22.01).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_predictions_panic() {
        let r = HolisticReport {
            development_kwh: 0.0,
            execution_kwh: 0.0,
            inference_kwh_per_prediction: 0.0,
            balanced_accuracy: 0.5,
        };
        let _ = r.total_kwh(-1.0);
    }
}
