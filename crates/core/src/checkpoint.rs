//! Crash-safe checkpointing for the benchmark grid.
//!
//! A full paper-scale grid is 28 compute-days; a killed process must not
//! forfeit its completed cells. [`Checkpoint`] persists each finished grid
//! cell to an append-only text file the moment it completes, and on the
//! next run [`benchmark::run_grid_checked`](crate::benchmark::run_grid_checked)
//! replays those cells instead of recomputing them.
//!
//! ## Format
//!
//! The file is line-oriented, tab-separated, append-only:
//!
//! ```text
//! green-automl-checkpoint v1 <fingerprint>
//! point <cell> <system> <dataset> <seed> <ints...> <f64s as hex bits...>
//! done  <cell> <n_points>
//! fail  <cell> <panic message>
//! done  <cell> 0
//! ```
//!
//! Every `f64` is stored as the big-endian hex of its bit pattern
//! (`{:016x}` of `to_bits`), so a replayed cell is **byte-identical** to a
//! recomputed one — the checkpoint cannot perturb the determinism
//! guarantees the equivalence tests assert.
//!
//! ## Kill-safety
//!
//! A cell counts as completed only when its `done` marker is present and
//! its record count matches. A process killed mid-write leaves a torn
//! final line with no `done` marker; the loader discards it and the cell
//! reruns. The fingerprint in the header hashes the grid configuration
//! (systems, datasets, budgets, seeds, fault plan); a mismatch means the
//! file belongs to a different grid and is silently started fresh.

use crate::benchmark::BenchmarkPoint;
use green_automl_energy::{Measurement, OpCounts};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

const HEADER_PREFIX: &str = "green-automl-checkpoint v1 ";

/// 64-bit FNV-1a over a word sequence — the grid-configuration fingerprint.
pub fn fingerprint(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

/// 64-bit FNV-1a of a string — folds names into [`fingerprint`] words.
pub fn fingerprint_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The replayable outcome of a completed grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedCell {
    /// Points the cell produced (empty when the cell failed).
    pub points: Vec<BenchmarkPoint>,
    /// The recorded panic message, if the cell failed.
    pub failure: Option<String>,
}

/// An open checkpoint file: the cells already completed by earlier runs,
/// plus an append-only writer for the cells this run completes.
#[derive(Debug)]
pub struct Checkpoint {
    completed: HashMap<usize, CompletedCell>,
    writer: Mutex<BufWriter<File>>,
}

fn fmt_f64(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn parse_f64(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

fn point_line(cell: usize, p: &BenchmarkPoint) -> String {
    let f = [
        p.budget_s,
        p.balanced_accuracy,
        p.execution.duration_s,
        p.execution.energy.package_j,
        p.execution.energy.dram_j,
        p.execution.energy.gpu_j,
        p.execution.ops.scalar_flops,
        p.execution.ops.matmul_flops,
        p.execution.ops.tree_steps,
        p.execution.ops.mem_bytes,
        p.inference_kwh_per_row,
        p.inference_s_per_row,
        p.wasted_j,
    ];
    let hex: Vec<String> = f.iter().map(|&x| fmt_f64(x)).collect();
    format!(
        "point\t{cell}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
        p.system,
        p.dataset,
        p.seed,
        p.n_models,
        p.n_evaluations,
        p.n_trial_faults,
        hex.join("\t"),
    )
}

fn parse_point(fields: &[&str]) -> Option<(usize, BenchmarkPoint)> {
    // point cell system dataset seed n_models n_evals n_faults + 13 f64s
    if fields.len() != 21 {
        return None;
    }
    let cell: usize = fields[1].parse().ok()?;
    let mut f = [0.0f64; 13];
    for (slot, s) in f.iter_mut().zip(&fields[8..]) {
        *slot = parse_f64(s)?;
    }
    Some((
        cell,
        BenchmarkPoint {
            // Unknown system names (e.g. a removed test double) fail the
            // parse and the cell simply recomputes.
            system: fields[2].parse().ok()?,
            dataset: fields[3].to_string(),
            seed: fields[4].parse().ok()?,
            n_models: fields[5].parse().ok()?,
            n_evaluations: fields[6].parse().ok()?,
            n_trial_faults: fields[7].parse().ok()?,
            budget_s: f[0],
            balanced_accuracy: f[1],
            execution: Measurement {
                duration_s: f[2],
                energy: green_automl_energy::tracker::EnergyBreakdown {
                    package_j: f[3],
                    dram_j: f[4],
                    gpu_j: f[5],
                },
                ops: OpCounts {
                    scalar_flops: f[6],
                    matmul_flops: f[7],
                    tree_steps: f[8],
                    mem_bytes: f[9],
                },
            },
            inference_kwh_per_row: f[10],
            inference_s_per_row: f[11],
            wasted_j: f[12],
            // Traces are not persisted; replayed points carry none. The
            // `repro trace` artefact always recomputes, so this never
            // perturbs trace determinism.
            trace: None,
        },
    ))
}

/// Parse the body of an existing checkpoint file into its completed cells.
/// Torn or malformed trailing records are ignored, not errors.
fn parse_body(body: &str) -> HashMap<usize, CompletedCell> {
    let mut pending_points: HashMap<usize, Vec<BenchmarkPoint>> = HashMap::new();
    let mut pending_fail: HashMap<usize, String> = HashMap::new();
    let mut completed = HashMap::new();
    for line in body.lines() {
        let fields: Vec<&str> = line.split('\t').collect();
        match fields.first().copied() {
            Some("point") => {
                if let Some((cell, p)) = parse_point(&fields) {
                    pending_points.entry(cell).or_default().push(p);
                }
            }
            Some("fail") if fields.len() >= 3 => {
                if let Ok(cell) = fields[1].parse::<usize>() {
                    pending_fail.insert(cell, fields[2..].join("\t"));
                }
            }
            Some("done") if fields.len() == 3 => {
                let (cell, n) = match (fields[1].parse::<usize>(), fields[2].parse::<usize>()) {
                    (Ok(c), Ok(n)) => (c, n),
                    _ => continue,
                };
                let mut points = pending_points.remove(&cell).unwrap_or_default();
                let failure = pending_fail.remove(&cell);
                // The marker seals the cell only when every record it
                // promises actually parsed — a torn write stays incomplete.
                // More points than promised means the file also carries an
                // orphaned earlier attempt (a crash tore its `done` away
                // and the cell was re-journalled); each block is written
                // atomically under the writer lock, so the *last* `n`
                // records are the block this marker seals.
                if points.len() >= n && (n > 0 || failure.is_some()) {
                    let points = points.split_off(points.len() - n);
                    completed.insert(cell, CompletedCell { points, failure });
                }
            }
            _ => {}
        }
    }
    completed
}

impl Checkpoint {
    /// Open (or create) the checkpoint at `path` for a grid whose
    /// configuration hashes to `fp`.
    ///
    /// If the file exists and its header fingerprint matches, completed
    /// cells are loaded for replay and new records append. On a missing
    /// file or a fingerprint mismatch the file is started fresh.
    pub fn open(path: &Path, fp: u64) -> std::io::Result<Checkpoint> {
        let header = format!("{HEADER_PREFIX}{fp:016x}");
        let mut torn_tail = false;
        let completed = match File::open(path) {
            Ok(mut f) => {
                let mut text = String::new();
                f.read_to_string(&mut text)?;
                torn_tail = !text.is_empty() && !text.ends_with('\n');
                match text.split_once('\n') {
                    Some((first, body)) if first.trim_end() == header => parse_body(body),
                    _ => HashMap::new(),
                }
            }
            Err(_) => HashMap::new(),
        };
        let file = if completed.is_empty() {
            let mut f = File::create(path)?;
            writeln!(f, "{header}")?;
            f
        } else {
            let mut f = OpenOptions::new().append(true).open(path)?;
            if torn_tail {
                // A record cut mid-line by a crash has no trailing
                // newline; seal it so the first new append starts on a
                // fresh line instead of concatenating into garbage (the
                // parser ignores the blank line this leaves behind).
                f.write_all(b"\n")?;
            }
            f
        };
        Ok(Checkpoint {
            completed,
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    /// The cell's recorded outcome from an earlier run, if it completed.
    pub fn completed(&self, cell: usize) -> Option<&CompletedCell> {
        self.completed.get(&cell)
    }

    /// Number of cells completed by earlier runs.
    pub fn n_completed(&self) -> usize {
        self.completed.len()
    }

    /// Lock the append writer, recovering from poison.
    ///
    /// A grid worker that panics *while holding* this lock (a `catch_cell`
    /// boundary sits above every caller, so a mid-`write_all` panic is the
    /// realistic case) poisons the mutex. Panicking in turn here would let
    /// one dead shard writer take down checkpointing — and therefore
    /// resume — for every other worker in the run. Instead we take the
    /// inner writer back, seal whatever torn partial line the panicker
    /// left with a newline (the loader ignores blank lines, and a sealed
    /// torn record parses as malformed and is discarded, so the cell
    /// simply recomputes), and clear the poison flag for later callers.
    fn writer(&self) -> MutexGuard<'_, BufWriter<File>> {
        match self.writer.lock() {
            Ok(w) => w,
            Err(poisoned) => {
                let mut w = poisoned.into_inner();
                let _ = w.write_all(b"\n");
                self.writer.clear_poison();
                w
            }
        }
    }

    /// Persist a successful cell: its points plus the sealing `done`
    /// marker, written and flushed atomically with respect to other cells.
    pub fn record_points(&self, cell: usize, points: &[BenchmarkPoint]) -> std::io::Result<()> {
        let mut block = String::new();
        for p in points {
            block.push_str(&point_line(cell, p));
            block.push('\n');
        }
        block.push_str(&format!("done\t{cell}\t{}\n", points.len()));
        let mut w = self.writer();
        w.write_all(block.as_bytes())?;
        w.flush()
    }

    /// Persist a failed cell: the panic message (newlines and tabs
    /// flattened) plus its `done` marker.
    pub fn record_failure(&self, cell: usize, message: &str) -> std::io::Result<()> {
        let clean: String = message
            .chars()
            .map(|c| if c == '\n' || c == '\t' { ' ' } else { c })
            .collect();
        let block = format!("fail\t{cell}\t{clean}\ndone\t{cell}\t0\n");
        let mut w = self.writer();
        w.write_all(block.as_bytes())?;
        w.flush()
    }
}

/// The checkpoint path of host `host` in an `n_hosts`-wide cluster run.
///
/// A single-host run keeps the caller's path untouched, so `--checkpoint`
/// files written before the cluster executor existed resume unchanged.
/// Multi-host runs give each host its own journal file (`grid.ckpt.h0`,
/// `grid.ckpt.h1`, …) sharing one grid fingerprint: a killed run resumes
/// per shard, and because the fingerprint excludes topology, shards
/// written at one (hosts × jobs) shape replay at any other.
pub fn shard_path(path: &Path, host: usize, n_hosts: usize) -> PathBuf {
    if n_hosts <= 1 {
        return path.to_path_buf();
    }
    let mut name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    name.push_str(&format!(".h{host}"));
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use green_automl_energy::tracker::EnergyBreakdown;

    fn sample_point(seed: u64) -> BenchmarkPoint {
        BenchmarkPoint {
            system: green_automl_systems::SystemId::Flaml,
            dataset: "blood-transfusion-service-center".to_string(),
            budget_s: 10.0,
            seed,
            balanced_accuracy: 0.731_234_567_891,
            execution: Measurement {
                duration_s: 10.25,
                energy: EnergyBreakdown {
                    package_j: 291.125,
                    dram_j: 61.5,
                    gpu_j: 0.0,
                },
                ops: OpCounts {
                    scalar_flops: 2.0e10,
                    matmul_flops: 1.0e9,
                    tree_steps: 3.0e8,
                    mem_bytes: 4.0e9,
                },
            },
            inference_kwh_per_row: 1.234e-9,
            inference_s_per_row: 5.678e-6,
            n_models: 1,
            n_evaluations: 17,
            n_trial_faults: 2,
            wasted_j: 13.0625,
            trace: None,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("green-automl-checkpoint-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn points_round_trip_bitwise() {
        let p = sample_point(42);
        let line = point_line(7, &p);
        let fields: Vec<&str> = line.split('\t').collect();
        let (cell, q) = parse_point(&fields).expect("round trip");
        assert_eq!(cell, 7);
        assert_eq!(q.balanced_accuracy.to_bits(), p.balanced_accuracy.to_bits());
        assert_eq!(
            q.execution.energy.package_j.to_bits(),
            p.execution.energy.package_j.to_bits()
        );
        assert_eq!(q.wasted_j.to_bits(), p.wasted_j.to_bits());
        assert_eq!(format!("{q:?}"), format!("{p:?}"));
    }

    #[test]
    fn open_record_reopen_replays_completed_cells() {
        let path = tmp("roundtrip.ckpt");
        let _ = std::fs::remove_file(&path);
        let fp = fingerprint(&[1, 2, 3]);
        {
            let ck = Checkpoint::open(&path, fp).unwrap();
            assert_eq!(ck.n_completed(), 0);
            ck.record_points(0, &[sample_point(1), sample_point(2)])
                .unwrap();
            ck.record_failure(1, "cell 1 poisoned:\n\tdetails").unwrap();
        }
        let ck = Checkpoint::open(&path, fp).unwrap();
        assert_eq!(ck.n_completed(), 2);
        assert_eq!(ck.completed(0).unwrap().points.len(), 2);
        assert_eq!(ck.completed(0).unwrap().points[1].seed, 2);
        let fail = ck.completed(1).unwrap();
        assert!(fail.points.is_empty());
        assert_eq!(fail.failure.as_deref(), Some("cell 1 poisoned:  details"));
        assert!(ck.completed(2).is_none());
    }

    #[test]
    fn torn_trailing_record_is_discarded() {
        let path = tmp("torn.ckpt");
        let _ = std::fs::remove_file(&path);
        let fp = fingerprint(&[9]);
        {
            let ck = Checkpoint::open(&path, fp).unwrap();
            ck.record_points(0, &[sample_point(1)]).unwrap();
            ck.record_points(1, &[sample_point(2)]).unwrap();
        }
        // Simulate a kill mid-write: drop the final `done` marker and half
        // of the last point line.
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let truncated = format!(
            "{}\n{}",
            lines[..lines.len() - 2].join("\n"),
            &lines[lines.len() - 2][..20]
        );
        std::fs::write(&path, truncated).unwrap();

        let ck = Checkpoint::open(&path, fp).unwrap();
        assert_eq!(ck.n_completed(), 1, "only the sealed cell survives");
        assert!(ck.completed(0).is_some());
        assert!(ck.completed(1).is_none());
    }

    #[test]
    fn fingerprint_mismatch_starts_fresh() {
        let path = tmp("mismatch.ckpt");
        let _ = std::fs::remove_file(&path);
        {
            let ck = Checkpoint::open(&path, fingerprint(&[1])).unwrap();
            ck.record_points(0, &[sample_point(1)]).unwrap();
        }
        let ck = Checkpoint::open(&path, fingerprint(&[2])).unwrap();
        assert_eq!(ck.n_completed(), 0, "other grid's cells must not replay");
        // And the stale file was truncated, so reopening under the new
        // fingerprint still finds a valid (empty) checkpoint.
        let again = Checkpoint::open(&path, fingerprint(&[2])).unwrap();
        assert_eq!(again.n_completed(), 0);
    }

    #[test]
    fn poisoned_writer_recovers_and_later_cells_still_checkpoint() {
        let path = tmp("poison.ckpt");
        let _ = std::fs::remove_file(&path);
        let fp = fingerprint(&[77]);
        let ck = std::sync::Arc::new(Checkpoint::open(&path, fp).unwrap());

        // A worker writes a partial (unsealed) record and dies holding the
        // writer lock — the mutex is now poisoned mid-line.
        let ck2 = std::sync::Arc::clone(&ck);
        let _ = std::thread::spawn(move || {
            let mut w = ck2.writer.lock().unwrap();
            w.write_all(b"point\t5\ttorn-partial").unwrap();
            w.flush().unwrap();
            panic!("worker dies holding the checkpoint writer");
        })
        .join();
        assert!(ck.writer.is_poisoned());

        // Surviving workers keep journaling: the poisoned lock is
        // recovered, the torn line sealed, and later records land intact.
        ck.record_points(0, &[sample_point(3)]).unwrap();
        assert!(!ck.writer.is_poisoned());
        ck.record_failure(1, "late failure").unwrap();
        drop(ck);

        let ck = Checkpoint::open(&path, fp).unwrap();
        assert_eq!(ck.n_completed(), 2);
        assert_eq!(ck.completed(0).unwrap().points[0].seed, 3);
        assert_eq!(
            ck.completed(1).unwrap().failure.as_deref(),
            Some("late failure")
        );
        assert!(ck.completed(5).is_none(), "torn record must not seal");
    }

    #[test]
    fn shard_paths_are_stable_and_single_host_is_untouched() {
        let base = Path::new("/tmp/run/grid.ckpt");
        assert_eq!(shard_path(base, 0, 1), base);
        assert_eq!(shard_path(base, 0, 4), Path::new("/tmp/run/grid.ckpt.h0"));
        assert_eq!(shard_path(base, 3, 4), Path::new("/tmp/run/grid.ckpt.h3"));
        // Shards of different hosts never collide.
        assert_ne!(shard_path(base, 1, 2), shard_path(base, 0, 2));
    }

    #[test]
    fn fingerprints_differ_when_any_word_changes() {
        let base = fingerprint(&[1, 2, 3]);
        assert_ne!(base, fingerprint(&[1, 2, 4]));
        assert_ne!(base, fingerprint(&[3, 2, 1]));
        assert_ne!(base, fingerprint(&[1, 2]));
        assert_eq!(base, fingerprint(&[1, 2, 3]));
    }
}
