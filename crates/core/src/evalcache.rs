//! Grid-wide evaluation memoisation (re-exported from `green-automl-ml`).
//!
//! The benchmark grid of §3.1 re-evaluates the same (pipeline, dataset,
//! split, fidelity) combination many times: every system draws from the
//! same pipeline spaces, every budget re-runs the same early trials, and
//! every repetition reuses the same derived splits. [`EvalCache`] is the
//! content-addressed memo table that collapses those duplicates, following
//! the same grid-sharing pattern as
//! [`DatasetCache`](crate::executor::DatasetCache): one instance created in
//! [`run_grid_checked`](crate::benchmark::run_grid_checked), shared by
//! reference with every worker.
//!
//! The cache is **energy-conserving by construction**: each entry stores
//! the exact charge records of the evaluation that produced it, and a hit
//! replays those charges on the requesting cell's tracker. Every
//! `Measurement`, trace, and artefact byte is therefore identical with the
//! cache on or off, at every worker count — the cache trades real compute
//! for memory while the *simulated* joules stay untouched. DESIGN.md §8
//! documents the key-derivation and invalidation rules.

pub use green_automl_ml::evalcache::{
    context_fingerprint, fingerprint_dataset, fingerprint_matrix, fingerprint_model,
    fingerprint_pipeline, kind, split_word, CachedValue, EvalCache, EvalKey, EvalScope,
};
