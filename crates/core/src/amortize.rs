//! Cross-stage break-even analyses.
//!
//! Two questions from the paper:
//!
//! * Fig. 4 — at how many *predictions* does a cheap-execution /
//!   expensive-inference system (TabPFN) lose to an expensive-execution /
//!   cheap-inference one (FLAML, CAML)? The paper finds ≈ 26 k.
//! * §3.7 — after how many *AutoML executions* does the development-stage
//!   tuning energy amortise? The paper finds 885 runs for the 5-minute
//!   parameters (21 kWh of tuning).

/// Total energy (kWh) of one deployment after `n_predictions`.
pub fn total_kwh(execution_kwh: f64, inference_kwh_per_row: f64, n_predictions: f64) -> f64 {
    assert!(
        n_predictions >= 0.0,
        "prediction count must be non-negative"
    );
    execution_kwh + inference_kwh_per_row * n_predictions
}

/// The prediction count at which deployment `a` (cheap execution, expensive
/// inference) starts costing more total energy than deployment `b`.
/// Returns `None` if the curves never cross for non-negative counts
/// (whichever is cheaper at zero stays cheaper).
pub fn crossover_predictions(
    exec_a_kwh: f64,
    inf_a_kwh_per_row: f64,
    exec_b_kwh: f64,
    inf_b_kwh_per_row: f64,
) -> Option<f64> {
    let d_exec = exec_b_kwh - exec_a_kwh;
    let d_inf = inf_a_kwh_per_row - inf_b_kwh_per_row;
    if d_inf <= 0.0 || d_exec <= 0.0 {
        // Same-side domination: no crossing in n >= 0, unless a is worse
        // everywhere (then the crossing is at 0).
        if d_inf > 0.0 && d_exec <= 0.0 {
            return Some(0.0);
        }
        return None;
    }
    Some(d_exec / d_inf)
}

/// How many executions of a tuned AutoML system amortise the development
/// energy spent tuning it, given the per-run saving. Returns `None` when
/// the tuned system saves nothing per run.
pub fn runs_to_amortize(
    development_kwh: f64,
    default_kwh_per_run: f64,
    tuned_kwh_per_run: f64,
) -> Option<f64> {
    assert!(
        development_kwh >= 0.0,
        "development energy must be non-negative"
    );
    let saving = default_kwh_per_run - tuned_kwh_per_run;
    if saving <= 0.0 {
        None
    } else {
        Some(development_kwh / saving)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use green_automl_energy::rng::SplitMix64;

    #[test]
    fn crossover_matches_hand_computation() {
        // a: free execution, 1e-4 kWh/pred; b: 2.6 kWh execution, 0 /pred.
        // Crossing at 26 000 predictions — the paper's Fig. 4 magnitude.
        let n = crossover_predictions(0.0, 1e-4, 2.6, 0.0).unwrap();
        assert!((n - 26_000.0).abs() < 1e-6);
    }

    #[test]
    fn dominated_deployments_have_no_crossover() {
        // a cheaper in both stages: never crosses.
        assert_eq!(crossover_predictions(0.0, 1e-6, 1.0, 2e-6), None);
        // a worse in both stages: crossed already at 0.
        assert_eq!(crossover_predictions(1.0, 2e-6, 0.5, 1e-6), Some(0.0));
    }

    #[test]
    fn equal_inference_costs_never_cross() {
        // Identical per-prediction energy: the curves are parallel, so no
        // crossover regardless of which execution was cheaper.
        assert_eq!(crossover_predictions(0.5, 1e-5, 2.0, 1e-5), None);
        assert_eq!(crossover_predictions(2.0, 1e-5, 0.5, 1e-5), None);
        // Fully identical deployments are parallel too, not "crossed at 0".
        assert_eq!(crossover_predictions(1.0, 1e-5, 1.0, 1e-5), None);
    }

    #[test]
    fn non_positive_gain_never_amortizes() {
        // Tuned run exactly as expensive, strictly worse, and the
        // degenerate zero-cost pair: no run count pays the tuning back.
        assert_eq!(runs_to_amortize(21.0, 0.05, 0.05), None);
        assert_eq!(runs_to_amortize(21.0, 0.03, 0.05), None);
        assert_eq!(runs_to_amortize(0.0, 0.0, 0.0), None);
        // Free development with a real saving amortises immediately.
        assert_eq!(runs_to_amortize(0.0, 0.05, 0.04), Some(0.0));
    }

    #[test]
    fn amortization_matches_paper_arithmetic() {
        // 21 kWh of tuning amortises over 885 runs when each tuned run
        // saves ~23.7 Wh.
        let runs = runs_to_amortize(21.0, 0.05, 0.05 - 21.0 / 885.0).unwrap();
        assert!((runs - 885.0).abs() < 1.0);
    }

    #[test]
    fn no_saving_never_amortizes() {
        assert_eq!(runs_to_amortize(21.0, 0.05, 0.05), None);
        assert_eq!(runs_to_amortize(21.0, 0.05, 0.06), None);
    }

    #[test]
    fn total_is_monotone_in_predictions() {
        let mut rng = SplitMix64::seed_from_u64(0xa3a);
        for _ in 0..64 {
            let e = rng.gen_range(0.0..10.0f64);
            let i = rng.gen_range(0.0..1e-3f64);
            let n1 = rng.gen_range(0.0..1e9f64);
            let n2 = rng.gen_range(0.0..1e9f64);
            let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
            assert!(total_kwh(e, i, lo) <= total_kwh(e, i, hi) + 1e-9);
        }
    }

    #[test]
    fn crossover_is_the_equality_point() {
        let mut rng = SplitMix64::seed_from_u64(0xc20);
        for _ in 0..64 {
            let ea = rng.gen_range(0.0..1.0f64);
            let ia = rng.gen_range(1e-6..1e-3f64);
            let eb = rng.gen_range(1.0..5.0f64);
            let ib = rng.gen_range(0.0..1e-6f64);
            if let Some(n) = crossover_predictions(ea, ia, eb, ib) {
                if n > 0.0 {
                    let a = total_kwh(ea, ia, n);
                    let b = total_kwh(eb, ib, n);
                    assert!((a - b).abs() < 1e-6 * a.max(b).max(1.0));
                }
            }
        }
    }
}
