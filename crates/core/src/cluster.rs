//! Simulated multi-host cluster execution of the benchmark grid.
//!
//! [`run_grid_cluster`] generalises the single-host work queue in
//! [`executor`](crate::executor) into a deterministic cluster: grid cells
//! are sharded across [`HostSpec`]s (each with its own
//! [`Device`](green_automl_energy::Device) profile and per-host virtual
//! clock), dataset shipping / result collection / cache synchronisation
//! are charged as virtual Joules through a [`NetworkModel`], and
//! host-level faults ([`HostFault`]: crash, straggler, partition) are
//! decided by the same pure hash-of-(seed, site) scheme as every other
//! failure in the workspace.
//!
//! ## The two-phase discipline
//!
//! The headline guarantee — `GridRun` points, span traces, and checkpoint
//! fingerprints **byte-identical at every (hosts × jobs) shape, clean and
//! chaos-faulted** — falls out of the same structure the serving fleet
//! uses:
//!
//! 1. **Compute phase** (real threads): every scheduled cell is computed
//!    exactly once over `opts.parallelism` workers. A cell's result is a
//!    pure function of its spec — placement cannot touch it. Cells on a
//!    host whose attempt-0 site draws a partition run under a *frozen*
//!    [`CacheView`]: they genuinely cannot see entries other hosts
//!    published after the partition started, which can only turn would-be
//!    cache hits into recomputes — bitwise invisible by the eval-cache
//!    energy-conservation rule. Each completed cell is journalled to its
//!    primary host's shard checkpoint the moment it finishes.
//! 2. **Placement phase** (strictly serial simulation): a deterministic
//!    event loop replays the schedule over virtual time — per-host
//!    clocks, hash sharding, transfers, host faults, capped-backoff
//!    retry, speculation — consuming the durations and energies the
//!    compute phase recorded. Everything it produces (the
//!    [`ClusterReport`], its trace, the retry counters) is a pure
//!    function of (cells, topology, fault plan), independent of how many
//!    worker threads phase 1 used.
//!
//! ## Scheduler robustness
//!
//! * A **crashed** host (never host 0 — the coordinator holds the
//!   datasets, results, and cache) burns the in-flight attempt's partial
//!   energy as `wasted_j` and dies; the lost attempt is re-queued with
//!   capped exponential backoff and its queued cells are re-sharded onto
//!   survivors.
//! * A **straggler** is detected by deterministic deadline accounting
//!   (slowdown beyond `straggler_deadline`); the cell is speculatively
//!   re-executed on the next alive host, first completion wins by a
//!   pinned total order (finish-time bits, then host id), and the
//!   loser's burn is charged as `wasted_j`.
//! * A **partitioned** host keeps computing locally (its cache hits
//!   replay locally) and delivers results — plus the cache entries it
//!   must reconcile — only when the partition heals.

use crate::benchmark::{
    enumerate_cells, grid_fingerprint, run_once_in, BenchmarkOptions, BenchmarkPoint, CellFailure,
    GridRun,
};
use crate::checkpoint::{self, shard_path, Checkpoint};
use crate::executor::{self, CellOutcome, DatasetCache};
use green_automl_dataset::{DatasetMeta, MaterializeOptions};
use green_automl_energy::trace::span_id;
use green_automl_energy::tracker::EnergyBreakdown;
use green_automl_energy::{
    Device, FaultInjector, FaultKind, HostFault, MetricsRegistry, OpCounts, Span, SpanKind,
    StableHasher, Trace,
};
use green_automl_ml::{CacheView, EvalCache};
use green_automl_systems::{AutoMlSystem, FitContext, RunSpec, RunSpecError};
use std::collections::{HashSet, VecDeque};
use std::path::Path;

/// Domain tag for primary shard placement.
const TAG_SHARD: u64 = 0x7421_a11a_5f4e_0010;
/// Domain tag for re-shard targets after a host crash.
const TAG_RESHARD: u64 = 0x7421_a11a_5f4e_0011;
/// Domain tag for cluster trace span ids (disjoint from every per-cell
/// tracer seed, so merged traces keep unique ids).
const TAG_CLUSTER_TRACE: u64 = 0x636c_7573; // "clus"

/// Serialized size charged per collected benchmark point.
const RESULT_BYTES_PER_POINT: f64 = 256.0;
/// Serialized size charged per eval-cache entry a rejoining host syncs.
const SYNC_BYTES_PER_EVAL: f64 = 4096.0;

/// One simulated machine in the cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostSpec {
    /// The host's device (power/throughput) profile.
    pub device: Device,
    /// Cores the host exposes to the scheduler.
    pub cores: usize,
}

impl HostSpec {
    /// Host 0's profile: the paper's CPU testbed, colocated with the
    /// dataset store, result sink, and cache authority.
    pub fn coordinator() -> HostSpec {
        HostSpec {
            device: Device::xeon_gold_6132(),
            cores: 28,
        }
    }

    /// A commodity worker node.
    pub fn worker() -> HostSpec {
        HostSpec {
            device: Device::cluster_node(),
            cores: 16,
        }
    }
}

/// Virtual network cost model: every byte shipped between hosts costs
/// wall-clock seconds (latency + bandwidth) and Joules (NIC + switch
/// energy), charged to the non-coordinator endpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Sustained throughput, bytes per second.
    pub bandwidth_bytes_per_s: f64,
    /// Fixed per-transfer latency, seconds.
    pub latency_s: f64,
    /// Transfer energy, Joules per byte.
    pub joules_per_byte: f64,
}

impl NetworkModel {
    /// A 10 GbE fabric: 1.25 GB/s, 0.5 ms RTT, 20 nJ/byte.
    pub fn ten_gbe() -> NetworkModel {
        NetworkModel {
            bandwidth_bytes_per_s: 1.25e9,
            latency_s: 5.0e-4,
            joules_per_byte: 2.0e-8,
        }
    }

    /// Virtual seconds to move `bytes`.
    pub fn transfer_s(&self, bytes: f64) -> f64 {
        self.latency_s + bytes / self.bandwidth_bytes_per_s
    }

    /// Virtual Joules to move `bytes`.
    pub fn transfer_j(&self, bytes: f64) -> f64 {
        self.joules_per_byte * bytes
    }
}

/// Cluster topology and scheduler policy.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterOptions {
    /// The hosts, in id order. Host 0 is the coordinator: crash- and
    /// partition-immune (it *is* the store every transfer talks to).
    pub hosts: Vec<HostSpec>,
    /// The interconnect cost model.
    pub network: NetworkModel,
    /// A cell whose slowdown factor reaches this bound is declared a
    /// straggler and speculatively re-executed on another alive host.
    pub straggler_deadline: f64,
    /// Base of the capped exponential backoff for crash-lost attempts.
    pub backoff_base_s: f64,
    /// Exponent cap: backoff is `base * 2^min(attempt, cap)` seconds.
    pub backoff_cap: u32,
}

impl ClusterOptions {
    /// The degenerate one-host cluster [`run_grid_checked`] runs on —
    /// behaviourally identical to the pre-cluster executor.
    ///
    /// [`run_grid_checked`]: crate::benchmark::run_grid_checked
    pub fn single_host() -> ClusterOptions {
        ClusterOptions::uniform(1)
    }

    /// A coordinator plus `n_hosts - 1` workers with alternating
    /// commodity / GPU-node-without-GPU device profiles.
    pub fn uniform(n_hosts: usize) -> ClusterOptions {
        let mut hosts = vec![HostSpec::coordinator()];
        for h in 1..n_hosts.max(1) {
            hosts.push(if h % 2 == 1 {
                HostSpec::worker()
            } else {
                HostSpec {
                    device: Device::gpu_node_cpu_only(),
                    cores: 8,
                }
            });
        }
        ClusterOptions {
            hosts,
            network: NetworkModel::ten_gbe(),
            straggler_deadline: 3.0,
            backoff_base_s: 0.5,
            backoff_cap: 6,
        }
    }

    /// Number of hosts.
    pub fn n_hosts(&self) -> usize {
        self.hosts.len()
    }
}

/// Per-host accounting of one cluster run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HostStats {
    /// Host id (0 = coordinator).
    pub host: usize,
    /// Device name.
    pub device: String,
    /// Cells this host completed (wins only, not wasted attempts).
    pub cells_run: usize,
    /// Local compute seconds (including slowed and wasted attempts).
    pub busy_s: f64,
    /// Final local clock (death instant for a crashed host).
    pub clock_s: f64,
    /// Joules burned computing winning attempts at nominal speed.
    pub busy_j: f64,
    /// Joules moved over the network (datasets in, results/sync out).
    pub transfer_j: f64,
    /// Joules burned by crash-killed and speculation-losing attempts.
    pub wasted_j: f64,
    /// Straggler surcharge: Joules beyond the nominal cost of the
    /// attempts that still won.
    pub overhead_j: f64,
    /// Joules idled away waiting for work or the grid's end.
    pub idle_j: f64,
    /// Bytes received (dataset shipping).
    pub bytes_in: f64,
    /// Bytes sent (result collection + cache sync).
    pub bytes_out: f64,
    /// Whether the host crashed during the run.
    pub crashed: bool,
    /// Attempts this host lost to its own crash.
    pub retried: usize,
    /// Speculative copies launched *because this host straggled*.
    pub speculated: usize,
    /// Queued cells drained off this host when it crashed.
    pub requeued: usize,
}

impl HostStats {
    /// Total Joules attributed to the host.
    pub fn total_j(&self) -> f64 {
        self.busy_j + self.transfer_j + self.wasted_j + self.overhead_j + self.idle_j
    }
}

/// The deterministic outcome of the placement phase: per-host accounting,
/// fault/retry totals, and the cluster-level span trace. A pure function
/// of (cells, topology, fault plan) — independent of `--jobs`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClusterReport {
    /// Number of hosts simulated.
    pub n_hosts: usize,
    /// Cells scheduled this run (excludes checkpoint-replayed cells).
    pub scheduled_cells: usize,
    /// Virtual completion time of the whole grid, seconds.
    pub makespan_s: f64,
    /// Per-host accounting, in host-id order.
    pub hosts: Vec<HostStats>,
    /// Attempts lost to host crashes and retried with backoff.
    pub retried_cells: usize,
    /// Queued cells re-sharded off crashed hosts.
    pub requeued_cells: usize,
    /// Cells speculatively re-executed for straggling.
    pub speculated_cells: usize,
    /// Straggler faults drawn (speculated or merely slowed).
    pub stragglers: usize,
    /// Partition faults drawn.
    pub partitions: usize,
    /// Hosts that crashed.
    pub host_crashes: usize,
    /// Faults drawn against the immune coordinator and suppressed.
    pub suppressed_faults: usize,
    /// Cells whose compute ran under a frozen (partitioned) cache view.
    pub cache_frozen_cells: usize,
    /// Total network Joules.
    pub transfer_j: f64,
    /// Total wasted Joules (crash-killed + speculation losers).
    pub wasted_j: f64,
    /// Cluster-level span trace: one `Host` span per host, one `Trial`
    /// span per executed attempt, one `Transfer` span per shipment.
    pub trace: Trace,
}

impl ClusterReport {
    /// Canonical text rendering (deterministic: every float through
    /// bit-exact `{:.6}` of values that are themselves deterministic).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "cluster: {} hosts, {} cells, makespan {:.6} s\n",
            self.n_hosts, self.scheduled_cells, self.makespan_s
        ));
        out.push_str(&format!(
            "faults: {} crashes, {} stragglers, {} partitions, {} suppressed\n",
            self.host_crashes, self.stragglers, self.partitions, self.suppressed_faults
        ));
        out.push_str(&format!(
            "recovery: {} retried, {} requeued, {} speculated, {} frozen-view\n",
            self.retried_cells, self.requeued_cells, self.speculated_cells, self.cache_frozen_cells
        ));
        out.push_str(&format!(
            "energy: transfer {:.6} J, wasted {:.6} J\n",
            self.transfer_j, self.wasted_j
        ));
        for h in &self.hosts {
            out.push_str(&format!(
                "host {} [{}]{}: {} cells, busy {:.6} s, clock {:.6} s, \
                 busy {:.6} J, transfer {:.6} J, wasted {:.6} J, overhead {:.6} J, \
                 idle {:.6} J, in {} B, out {} B, retried {}, speculated {}, requeued {}\n",
                h.host,
                h.device,
                if h.crashed { " CRASHED" } else { "" },
                h.cells_run,
                h.busy_s,
                h.clock_s,
                h.busy_j,
                h.transfer_j,
                h.wasted_j,
                h.overhead_j,
                h.idle_j,
                h.bytes_in,
                h.bytes_out,
                h.retried,
                h.speculated,
                h.requeued,
            ));
        }
        out
    }

    /// FNV fingerprint of the canonical text plus the serialized trace —
    /// equal fingerprints mean byte-identical reports.
    pub fn fingerprint(&self) -> u64 {
        checkpoint::fingerprint(&[
            checkpoint::fingerprint_str(&self.to_text()),
            checkpoint::fingerprint_str(&self.trace.to_jsonl()),
        ])
    }

    /// Export the report's counters into a metrics registry.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        reg.inc("cluster_hosts", self.n_hosts as u64);
        reg.inc("cluster_scheduled_cells", self.scheduled_cells as u64);
        reg.inc("cluster_retried_cells", self.retried_cells as u64);
        reg.inc("cluster_requeued_cells", self.requeued_cells as u64);
        reg.inc("cluster_speculated_cells", self.speculated_cells as u64);
        reg.inc("cluster_stragglers", self.stragglers as u64);
        reg.inc("cluster_partitions", self.partitions as u64);
        reg.inc("cluster_host_crashes", self.host_crashes as u64);
        reg.inc("cluster_suppressed_faults", self.suppressed_faults as u64);
        reg.inc("cluster_cache_frozen_cells", self.cache_frozen_cells as u64);
        reg.add("cluster_makespan_s", self.makespan_s);
        reg.add("cluster_transfer_j", self.transfer_j);
        reg.add("cluster_wasted_j", self.wasted_j);
        for h in &self.hosts {
            reg.add("cluster_host_total_j", h.total_j());
        }
    }
}

/// A cluster grid run: the placement-invariant [`GridRun`] artefact plus
/// the topology-dependent [`ClusterReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterGridRun {
    /// The grid output — byte-identical at every (hosts × jobs) shape.
    pub grid: GridRun,
    /// The cluster accounting — deterministic per topology.
    pub report: ClusterReport,
}

/// The primary shard placement of reference cell `cell`: a pure hash of
/// (grid seed, cell index), so placement never depends on `--jobs`.
fn primary_host(seed: u64, cell: usize, n_hosts: usize) -> usize {
    if n_hosts <= 1 {
        return 0;
    }
    let mut h = StableHasher::new(TAG_SHARD);
    h.write_u64(seed);
    h.write_u64(cell as u64);
    (h.finish() % n_hosts as u64) as usize
}

/// The re-shard target (an index into the alive-host list) for an attempt
/// drained off a crashed host.
fn reshard_slot(seed: u64, cell: usize, attempt: u64, n_alive: usize) -> usize {
    let mut h = StableHasher::new(TAG_RESHARD);
    h.write_u64(seed);
    h.write_u64(cell as u64);
    h.write_u64(attempt);
    (h.finish() % n_alive.max(1) as u64) as usize
}

/// What the placement phase needs to know about one computed cell.
struct CellSim {
    /// Reference serial cell index.
    cell: usize,
    /// Human label for trace spans.
    label: String,
    /// Dataset identity for once-per-host shipping.
    dataset_idx: usize,
    /// Serialized dataset size, bytes.
    dataset_bytes: f64,
    /// Serialized result size, bytes.
    result_bytes: f64,
    /// Reference-device execution duration, seconds.
    duration_s: f64,
    /// Pipelines evaluated (drives cache-sync volume on rejoin).
    n_evaluations: usize,
}

/// One queued execution attempt.
struct Attempt {
    /// Index into the schedule's `CellSim` list.
    k: usize,
    /// Attempt number (0 = first execution).
    attempt: u64,
    /// Earliest virtual start (crash backoff).
    not_before: f64,
}

/// Mutable per-host state of the placement simulation.
struct SimHost {
    spec: HostSpec,
    clock: f64,
    alive: bool,
    /// Seconds spent computing or transferring (for idle accounting).
    active_s: f64,
    shipped: HashSet<usize>,
    queue: VecDeque<Attempt>,
    stats: HostStats,
}

impl SimHost {
    /// Cores the cell's spec actually occupies here.
    fn alloc(&self, spec_cores: usize) -> usize {
        spec_cores.min(self.spec.device.cpu.cores).max(1)
    }

    /// Package+DRAM Watts while computing one cell.
    fn busy_w(&self, spec_cores: usize) -> f64 {
        let a = self.alloc(spec_cores);
        self.spec.device.cpu_power_w(a, a as f64)
    }

    /// Package+DRAM Watts while idle.
    fn idle_w(&self) -> f64 {
        self.spec.device.cpu_power_w(0, 0.0)
    }
}

/// The strictly serial placement simulation. See the module docs.
struct Sim<'a> {
    hosts: Vec<SimHost>,
    cluster: &'a ClusterOptions,
    injector: &'a FaultInjector,
    spec_cores: usize,
    /// Reference-device per-core rate, for the host speed factor.
    ref_core_rate: f64,
    trace_seed: u64,
    next_seq: u64,
    spans: Vec<Span>,
    report: ClusterReport,
}

impl<'a> Sim<'a> {
    fn new(cluster: &'a ClusterOptions, spec: &RunSpec, injector: &'a FaultInjector) -> Sim<'a> {
        let hosts = cluster
            .hosts
            .iter()
            .enumerate()
            .map(|(h, &spec_h)| SimHost {
                spec: spec_h,
                clock: 0.0,
                alive: true,
                active_s: 0.0,
                shipped: HashSet::new(),
                queue: VecDeque::new(),
                stats: HostStats {
                    host: h,
                    device: spec_h.device.name.to_string(),
                    ..HostStats::default()
                },
            })
            .collect();
        Sim {
            hosts,
            cluster,
            injector,
            spec_cores: spec.cores,
            ref_core_rate: spec.device.cpu.scalar_flops_per_core,
            trace_seed: spec.seed ^ TAG_CLUSTER_TRACE,
            // Host spans take sequence numbers 0..n; event spans follow.
            next_seq: cluster.hosts.len() as u64,
            spans: Vec::new(),
            report: ClusterReport {
                n_hosts: cluster.hosts.len(),
                ..ClusterReport::default()
            },
        }
    }

    /// The pre-assigned id of host `h`'s root span.
    fn host_span_id(&self, h: usize) -> u64 {
        span_id(self.trace_seed, h as u64)
    }

    fn next_span_id(&mut self) -> u64 {
        let id = span_id(self.trace_seed, self.next_seq);
        self.next_seq += 1;
        id
    }

    /// This cell's duration on host `h` (reference duration scaled by the
    /// per-core throughput ratio).
    fn local_duration(&self, h: usize, ref_duration_s: f64) -> f64 {
        ref_duration_s * self.ref_core_rate / self.hosts[h].spec.device.cpu.scalar_flops_per_core
    }

    /// Charge a transfer touching non-coordinator host `h` starting at
    /// `at`, and return its completion time. Time and Joules land on `h`
    /// (the coordinator's NIC is assumed concurrent).
    fn transfer(&mut self, h: usize, at: f64, bytes: f64, inbound: bool, label: String) -> f64 {
        let dur = self.cluster.network.transfer_s(bytes);
        let joules = self.cluster.network.transfer_j(bytes);
        let id = self.next_span_id();
        let parent = self.host_span_id(h);
        let host = &mut self.hosts[h];
        host.active_s += dur;
        host.stats.transfer_j += joules;
        if inbound {
            host.stats.bytes_in += bytes;
        } else {
            host.stats.bytes_out += bytes;
        }
        self.report.transfer_j += joules;
        self.spans.push(Span {
            id,
            parent: Some(parent),
            kind: SpanKind::Transfer,
            label,
            track: h as u32,
            start_s: at,
            end_s: at + dur,
            energy: EnergyBreakdown {
                package_j: joules,
                dram_j: 0.0,
                gpu_j: 0.0,
            },
            ops: OpCounts::ZERO,
            fault: None,
        });
        at + dur
    }

    /// Ship `sim`'s dataset to host `h` if it has not been shipped yet;
    /// returns the time the data is resident given a start at `at`.
    fn ensure_dataset(&mut self, h: usize, at: f64, sim: &CellSim) -> f64 {
        if h == 0 || self.hosts[h].shipped.contains(&sim.dataset_idx) {
            return at;
        }
        self.hosts[h].shipped.insert(sim.dataset_idx);
        self.transfer(
            h,
            at,
            sim.dataset_bytes,
            true,
            format!("ship d{} -> host {h}", sim.dataset_idx),
        )
    }

    /// Record one executed attempt as a `Trial` span.
    #[allow(clippy::too_many_arguments)]
    fn attempt_span(
        &mut self,
        h: usize,
        sim: &CellSim,
        attempt: u64,
        start: f64,
        end: f64,
        joules: f64,
        fault: Option<FaultKind>,
    ) {
        let id = self.next_span_id();
        self.spans.push(Span {
            id,
            parent: Some(self.host_span_id(h)),
            kind: SpanKind::Trial,
            label: format!("{} a{attempt}", sim.label),
            track: h as u32,
            start_s: start,
            end_s: end,
            energy: EnergyBreakdown {
                package_j: joules,
                dram_j: 0.0,
                gpu_j: 0.0,
            },
            ops: OpCounts::ZERO,
            fault,
        });
    }

    /// The next alive host after `h` in ring order, excluding `h`.
    fn ring_next_alive(&self, h: usize) -> Option<usize> {
        let n = self.hosts.len();
        (1..n).map(|d| (h + d) % n).find(|&c| self.hosts[c].alive)
    }

    /// Deliver a completed cell's result from host `h` at local time
    /// `at`, plus `sync_bytes` of cache reconciliation; returns the
    /// delivery completion time on `h`'s clock.
    fn deliver(&mut self, h: usize, at: f64, sim: &CellSim, sync_bytes: f64) -> f64 {
        if h == 0 {
            return at; // results are born on the coordinator
        }
        let t = self.transfer(
            h,
            at,
            sim.result_bytes + sync_bytes,
            false,
            format!("collect {} <- host {h}", sim.label),
        );
        self.hosts[h].stats.cells_run += 1;
        t
    }

    /// Run the event loop over `sims`, with each cell seeded on its
    /// primary host, and finalize the report.
    fn run(mut self, sims: &[CellSim], grid_seed: u64) -> ClusterReport {
        let n_hosts = self.hosts.len();
        for (k, sim) in sims.iter().enumerate() {
            let home = primary_host(grid_seed, sim.cell, n_hosts);
            self.hosts[home].queue.push_back(Attempt {
                k,
                attempt: 0,
                not_before: 0.0,
            });
        }
        self.report.scheduled_cells = sims.len();

        loop {
            // Pick the alive host whose next attempt can start earliest
            // (ties broken by host id — the pinned total order).
            let mut best: Option<(f64, usize)> = None;
            for (h, host) in self.hosts.iter().enumerate() {
                if !host.alive || host.queue.is_empty() {
                    continue;
                }
                let front = host.queue.front().expect("non-empty queue");
                let start = host.clock.max(front.not_before);
                if best.is_none_or(|(bs, _)| start < bs) {
                    best = Some((start, h));
                }
            }
            let Some((start, h)) = best else { break };
            let at = self.hosts[h].queue.pop_front().expect("picked non-empty");
            let sim = &sims[at.k];
            self.hosts[h].clock = start;

            let start = self.ensure_dataset(h, start, sim);
            self.hosts[h].clock = start;

            let fault = match self
                .injector
                .host_fault(h as u64, sim.cell as u64, at.attempt)
            {
                // The coordinator cannot crash away from itself or
                // partition from its own store; count and suppress.
                Some(HostFault::Crash { .. }) | Some(HostFault::Partition { .. }) if h == 0 => {
                    self.report.suppressed_faults += 1;
                    None
                }
                f => f,
            };

            let local_d = self.local_duration(h, sim.duration_s);
            let busy_w = self.hosts[h].busy_w(self.spec_cores);

            match fault {
                Some(HostFault::Crash { wasted_frac }) => {
                    let burn_s = wasted_frac * local_d;
                    let crash_t = start + burn_s;
                    self.report.host_crashes += 1;
                    self.report.retried_cells += 1;
                    self.report.wasted_j += busy_w * burn_s;
                    self.attempt_span(
                        h,
                        sim,
                        at.attempt,
                        start,
                        crash_t,
                        busy_w * burn_s,
                        Some(FaultKind::Crash),
                    );
                    {
                        let host = &mut self.hosts[h];
                        host.alive = false;
                        host.clock = crash_t;
                        host.active_s += burn_s;
                        host.stats.crashed = true;
                        host.stats.wasted_j += busy_w * burn_s;
                        host.stats.busy_s += burn_s;
                        host.stats.retried += 1;
                    }
                    // Re-queue the lost attempt with capped exponential
                    // backoff, then drain the dead host's queue onto
                    // survivors by hash re-sharding.
                    let backoff = self.cluster.backoff_base_s
                        * f64::from(1u32 << at.attempt.min(self.cluster.backoff_cap as u64) as u32);
                    let alive: Vec<usize> = (0..n_hosts).filter(|&c| self.hosts[c].alive).collect();
                    let retry_to =
                        alive[reshard_slot(grid_seed, sim.cell, at.attempt + 1, alive.len())];
                    self.hosts[retry_to].queue.push_back(Attempt {
                        k: at.k,
                        attempt: at.attempt + 1,
                        not_before: crash_t + backoff,
                    });
                    let drained: Vec<Attempt> = self.hosts[h].queue.drain(..).collect();
                    self.hosts[h].stats.requeued += drained.len();
                    self.report.requeued_cells += drained.len();
                    for q in drained {
                        let target =
                            alive[reshard_slot(grid_seed, sims[q.k].cell, q.attempt, alive.len())];
                        self.hosts[target].queue.push_back(Attempt {
                            not_before: q.not_before.max(crash_t),
                            ..q
                        });
                    }
                }
                Some(HostFault::Straggler { slowdown }) => {
                    self.report.stragglers += 1;
                    let slowed = local_d * slowdown;
                    let t_primary = start + slowed;
                    let copy_host = self.ring_next_alive(h);
                    let speculate =
                        slowdown >= self.cluster.straggler_deadline && copy_host.is_some();
                    if speculate {
                        let h2 = copy_host.expect("speculate requires a copy host");
                        self.report.speculated_cells += 1;
                        self.hosts[h].stats.speculated += 1;
                        // The deadline accountant notices the primary is
                        // `straggler_deadline`× over plan and launches the
                        // copy — no fault draw for the copy itself.
                        let detect = start + local_d * self.cluster.straggler_deadline;
                        let copy_start = self.hosts[h2].clock.max(detect);
                        let copy_start = self.ensure_dataset(h2, copy_start, sim);
                        let local_d2 = self.local_duration(h2, sim.duration_s);
                        let busy_w2 = self.hosts[h2].busy_w(self.spec_cores);
                        let t_copy = copy_start + local_d2;
                        // First completion wins by the pinned total order
                        // (finish bits, then host id).
                        let primary_wins = (t_primary.to_bits(), h) < (t_copy.to_bits(), h2);
                        self.attempt_span(
                            h,
                            sim,
                            at.attempt,
                            start,
                            t_primary,
                            busy_w * slowed,
                            None,
                        );
                        self.attempt_span(
                            h2,
                            sim,
                            at.attempt,
                            copy_start,
                            t_copy,
                            busy_w2 * local_d2,
                            None,
                        );
                        {
                            let host = &mut self.hosts[h];
                            host.clock = t_primary;
                            host.active_s += slowed;
                            host.stats.busy_s += slowed;
                        }
                        {
                            let host2 = &mut self.hosts[h2];
                            host2.clock = t_copy;
                            host2.active_s += local_d2;
                            host2.stats.busy_s += local_d2;
                        }
                        if primary_wins {
                            self.hosts[h].stats.busy_j += busy_w * local_d;
                            self.hosts[h].stats.overhead_j += busy_w * (slowed - local_d);
                            self.hosts[h2].stats.wasted_j += busy_w2 * local_d2;
                            self.report.wasted_j += busy_w2 * local_d2;
                            let t = self.deliver(h, t_primary, sim, 0.0);
                            self.hosts[h].clock = t;
                            if h == 0 {
                                self.hosts[h].stats.cells_run += 1;
                            }
                        } else {
                            self.hosts[h2].stats.busy_j += busy_w2 * local_d2;
                            self.hosts[h].stats.wasted_j += busy_w * slowed;
                            self.report.wasted_j += busy_w * slowed;
                            let t = self.deliver(h2, t_copy, sim, 0.0);
                            self.hosts[h2].clock = t;
                            if h2 == 0 {
                                self.hosts[h2].stats.cells_run += 1;
                            }
                        }
                    } else {
                        // Under the deadline (or nowhere to speculate):
                        // the cell just runs slow; the surcharge is
                        // overhead, not waste.
                        self.attempt_span(
                            h,
                            sim,
                            at.attempt,
                            start,
                            t_primary,
                            busy_w * slowed,
                            None,
                        );
                        {
                            let host = &mut self.hosts[h];
                            host.clock = t_primary;
                            host.active_s += slowed;
                            host.stats.busy_s += slowed;
                            host.stats.busy_j += busy_w * local_d;
                            host.stats.overhead_j += busy_w * (slowed - local_d);
                        }
                        let t = self.deliver(h, t_primary, sim, 0.0);
                        self.hosts[h].clock = t;
                        if h == 0 {
                            self.hosts[h].stats.cells_run += 1;
                        }
                    }
                }
                Some(HostFault::Partition { duration_s }) => {
                    self.report.partitions += 1;
                    let finish = start + local_d;
                    self.attempt_span(h, sim, at.attempt, start, finish, busy_w * local_d, None);
                    {
                        let host = &mut self.hosts[h];
                        host.active_s += local_d;
                        host.stats.busy_s += local_d;
                        host.stats.busy_j += busy_w * local_d;
                    }
                    // The host keeps computing behind the partition; the
                    // result — and the cache entries it must reconcile —
                    // leave only once the partition heals.
                    let rejoin = finish.max(start + duration_s);
                    let sync_bytes = sim.n_evaluations as f64 * SYNC_BYTES_PER_EVAL;
                    let t = self.deliver(h, rejoin, sim, sync_bytes);
                    self.hosts[h].clock = t.max(finish);
                    if h == 0 {
                        self.hosts[h].stats.cells_run += 1;
                    }
                }
                None => {
                    let finish = start + local_d;
                    self.attempt_span(h, sim, at.attempt, start, finish, busy_w * local_d, None);
                    {
                        let host = &mut self.hosts[h];
                        host.clock = finish;
                        host.active_s += local_d;
                        host.stats.busy_s += local_d;
                        host.stats.busy_j += busy_w * local_d;
                    }
                    let t = self.deliver(h, finish, sim, 0.0);
                    self.hosts[h].clock = t;
                    if h == 0 {
                        self.hosts[h].stats.cells_run += 1;
                    }
                }
            }
        }

        // Finalize: makespan, idle energy, host root spans.
        let makespan = self.hosts.iter().map(|h| h.clock).fold(0.0f64, f64::max);
        self.report.makespan_s = makespan;
        let mut host_spans = Vec::with_capacity(n_hosts);
        for h in 0..n_hosts {
            let end = if self.hosts[h].alive {
                makespan
            } else {
                self.hosts[h].clock
            };
            let idle = (end - self.hosts[h].active_s).max(0.0) * self.hosts[h].idle_w();
            let host = &mut self.hosts[h];
            host.stats.idle_j = idle;
            host.stats.clock_s = host.clock;
            host_spans.push(Span {
                id: span_id(self.trace_seed, h as u64),
                parent: None,
                kind: SpanKind::Host,
                label: format!("host {h} ({})", host.spec.device.name),
                track: h as u32,
                start_s: 0.0,
                end_s: end,
                energy: EnergyBreakdown {
                    package_j: host.stats.total_j(),
                    dram_j: 0.0,
                    gpu_j: 0.0,
                },
                ops: OpCounts::ZERO,
                fault: host.stats.crashed.then_some(FaultKind::Crash),
            });
        }
        // Root spans first, then events in simulation order.
        host_spans.extend(std::mem::take(&mut self.spans));
        self.report.trace = Trace { spans: host_spans };
        self.report.hosts = self.hosts.into_iter().map(|h| h.stats).collect();
        self.report
    }
}

/// Run the benchmark grid on a simulated cluster.
///
/// The compute phase executes every scheduled cell once over
/// `opts.parallelism` real worker threads (sharing one [`DatasetCache`]
/// and, when enabled, one cross-host [`EvalCache`]), journalling each
/// completed cell to its primary host's shard checkpoint. The placement
/// phase then simulates the cluster schedule — per-host clocks, network
/// transfers, host faults, retry/speculation — over virtual time.
///
/// The returned [`ClusterGridRun::grid`] is **byte-identical at every
/// (hosts × jobs) shape**, clean and chaos-faulted; the
/// [`ClusterGridRun::report`] is deterministic per topology.
pub fn run_grid_cluster(
    systems: &[Box<dyn AutoMlSystem>],
    datasets: &[DatasetMeta],
    budgets: &[f64],
    spec_base: &RunSpec,
    opts: &BenchmarkOptions,
    cluster: &ClusterOptions,
    checkpoint_path: Option<&Path>,
) -> Result<ClusterGridRun, RunSpecError> {
    spec_base.validate()?;
    assert!(
        !cluster.hosts.is_empty(),
        "a cluster needs at least one host"
    );
    let n_hosts = cluster.hosts.len();
    let cells = enumerate_cells(systems, datasets, budgets, spec_base, opts);
    let injector = FaultInjector::new(spec_base.fault);

    // One shard checkpoint per host; an unwritable shard degrades to a
    // plain run for the cells it would have journalled.
    let shards: Vec<Option<Checkpoint>> = match checkpoint_path {
        Some(path) => {
            let fp = grid_fingerprint(systems, datasets, budgets, spec_base, opts);
            (0..n_hosts)
                .map(|h| Checkpoint::open(&shard_path(path, h, n_hosts), fp).ok())
                .collect()
        }
        None => (0..n_hosts).map(|_| None).collect(),
    };
    // A completed cell replays from *any* shard, so journals survive a
    // topology change between runs as long as the shard files exist.
    let replay = |i: usize| shards.iter().flatten().find_map(|c| c.completed(i));

    let todo: Vec<usize> = (0..cells.len()).filter(|&i| replay(i).is_none()).collect();
    let resumed_cells = cells.len() - todo.len();

    let workers = executor::resolve_parallelism(opts.parallelism);
    let ds_cache = DatasetCache::new();
    // One cross-host evaluation memo table for the whole grid. The cache
    // (and each host's view of it) cannot change any point: hits replay
    // the recorded charges bitwise.
    let eval_cache = opts.eval_cache.then(EvalCache::new);

    // Is this cell's primary host partitioned at its first attempt? Pure
    // in (plan, topology, cell) — known before the cell starts, so the
    // compute phase can run it under the frozen view the simulated host
    // would actually hold.
    let frozen_home = |i: usize| -> Option<usize> {
        let home = primary_host(spec_base.seed, i, n_hosts);
        (home != 0
            && matches!(
                injector.host_fault(home as u64, i as u64, 0),
                Some(HostFault::Partition { .. })
            ))
        .then_some(home)
    };

    // ---- Phase 1: compute every scheduled cell (real parallelism). ----
    let fresh: Vec<CellOutcome<Vec<BenchmarkPoint>>> =
        executor::run_indexed(todo.len(), workers, |j| {
            let i = todo[j];
            let cell = &cells[i];
            let home = primary_host(spec_base.seed, i, n_hosts);
            let outcome = executor::catch_cell(|| {
                let system = systems[cell.system_idx].as_ref();
                let meta = &datasets[cell.dataset_idx];
                let spec = RunSpec {
                    seed: cell.seed,
                    budget_s: cell
                        .budget_s
                        .unwrap_or_else(|| budgets.first().copied().unwrap_or(10.0)),
                    ..*spec_base
                };
                let m_opts = MaterializeOptions {
                    seed: spec.seed,
                    ..opts.materialize
                };
                let ds = ds_cache.materialize(meta, &m_opts);
                let view = match (&eval_cache, frozen_home(i)) {
                    (Some(c), Some(home)) => CacheView {
                        host: home as u64,
                        horizon: Some(c.current_epoch()),
                    },
                    _ => CacheView {
                        host: home as u64,
                        horizon: None,
                    },
                };
                let ctx = match &eval_cache {
                    Some(c) => FitContext::with_cache(c).viewed(view),
                    None => FitContext::default(),
                };
                let point = run_once_in(system, meta, &ds, &spec, opts, &ctx);
                match cell.budget_s {
                    Some(_) => vec![point],
                    None => budgets
                        .iter()
                        .map(|&b| {
                            let mut p = point.clone();
                            p.budget_s = b;
                            p
                        })
                        .collect(),
                }
            });
            if let Some(ck) = &shards[home] {
                // Flush the sealed cell immediately: kill-safety beats a
                // write error here, which only costs a future resume.
                let _ = match &outcome {
                    CellOutcome::Ok(points) => ck.record_points(i, points),
                    CellOutcome::Failed(message) => ck.record_failure(i, message),
                };
            }
            outcome
        });

    // ---- Phase 2: serial placement simulation over virtual time. ----
    let sims: Vec<CellSim> = todo
        .iter()
        .zip(&fresh)
        .map(|(&i, outcome)| {
            let cell = &cells[i];
            let meta = &datasets[cell.dataset_idx];
            let system = systems[cell.system_idx].as_ref();
            let rows = meta.instances.min(opts.materialize.max_rows);
            let feats = meta.features.min(opts.materialize.max_features);
            let label = format!(
                "{}/{}/s{}{}",
                system.name(),
                meta.name,
                cell.seed,
                cell.budget_s.map(|b| format!("/b{b}")).unwrap_or_default()
            );
            let (duration_s, result_bytes, n_evaluations) = match outcome {
                CellOutcome::Ok(points) => {
                    let first = points.first();
                    (
                        first.map_or(0.0, |p| p.execution.duration_s),
                        RESULT_BYTES_PER_POINT * points.len() as f64,
                        first.map_or(0, |p| p.n_evaluations),
                    )
                }
                CellOutcome::Failed(message) => (
                    // A crashed cell is assumed to die at its budget; it
                    // ships only the panic message home.
                    cell.budget_s
                        .unwrap_or_else(|| budgets.first().copied().unwrap_or(10.0)),
                    64.0 + message.len() as f64,
                    0,
                ),
            };
            CellSim {
                cell: i,
                label,
                dataset_idx: cell.dataset_idx,
                dataset_bytes: (rows * (feats + 1) * 8) as f64,
                result_bytes,
                duration_s,
                n_evaluations,
            }
        })
        .collect();

    let mut report = Sim::new(cluster, spec_base, &injector).run(&sims, spec_base.seed);
    report.cache_frozen_cells = todo.iter().filter(|&&i| frozen_home(i).is_some()).count();

    // ---- Reassemble the grid in the reference serial cell order. ----
    let mut fresh_iter = fresh.into_iter();
    let (eval_cache_hits, eval_cache_misses) = eval_cache.as_ref().map_or((0, 0), EvalCache::stats);
    let mut grid = GridRun {
        resumed_cells,
        eval_cache_hits,
        eval_cache_misses,
        retried_cells: report.retried_cells,
        speculated_cells: report.speculated_cells,
        requeued_cells: report.requeued_cells,
        ..GridRun::default()
    };
    for (i, cell) in cells.iter().enumerate() {
        let (points, failure) = match replay(i) {
            Some(done) => (done.points.clone(), done.failure.clone()),
            None => match fresh_iter.next().expect("one outcome per scheduled cell") {
                CellOutcome::Ok(points) => (points, None),
                CellOutcome::Failed(message) => (Vec::new(), Some(message)),
            },
        };
        grid.points.extend(points);
        if let Some(message) = failure {
            grid.failures.push(CellFailure {
                cell: i,
                system: systems[cell.system_idx].id(),
                dataset: datasets[cell.dataset_idx].name.to_string(),
                budget_s: cell.budget_s,
                seed: cell.seed,
                message,
            });
        }
    }
    Ok(ClusterGridRun { grid, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use green_automl_dataset::amlb39;
    use green_automl_energy::FaultPlan;
    use green_automl_systems::{Flaml, TabPfn};

    fn small_meta() -> Vec<DatasetMeta> {
        amlb39()
            .into_iter()
            .filter(|m| m.name == "blood-transfusion-service-center" || m.name == "vehicle")
            .collect()
    }

    fn systems() -> Vec<Box<dyn AutoMlSystem>> {
        vec![Box::new(Flaml::default()), Box::new(TabPfn::default())]
    }

    fn spec(fault: FaultPlan) -> RunSpec {
        RunSpec {
            fault,
            ..RunSpec::single_core(10.0, 7)
        }
    }

    fn opts(jobs: usize) -> BenchmarkOptions {
        BenchmarkOptions {
            runs: 2,
            parallelism: jobs,
            ..BenchmarkOptions::quick()
        }
    }

    #[test]
    fn network_model_charges_latency_and_bytes() {
        let net = NetworkModel::ten_gbe();
        assert!(net.transfer_s(0.0) == net.latency_s);
        assert!(net.transfer_s(1.25e9) > 1.0);
        assert_eq!(net.transfer_j(1e6), 0.02);
    }

    #[test]
    fn primary_placement_is_pure_and_spread() {
        let a: Vec<usize> = (0..64).map(|c| primary_host(9, c, 4)).collect();
        let b: Vec<usize> = (0..64).map(|c| primary_host(9, c, 4)).collect();
        assert_eq!(a, b);
        for h in 0..4 {
            assert!(a.contains(&h), "host {h} never used");
        }
        assert!((0..64).all(|c| primary_host(9, c, 1) == 0));
    }

    #[test]
    fn single_host_cluster_matches_run_grid_checked() {
        let run = run_grid_cluster(
            &systems(),
            &small_meta(),
            &[10.0],
            &spec(FaultPlan::default()),
            &opts(2),
            &ClusterOptions::single_host(),
            None,
        )
        .unwrap();
        assert_eq!(run.report.n_hosts, 1);
        assert_eq!(run.report.host_crashes, 0);
        assert_eq!(run.grid.retried_cells, 0);
        assert_eq!(run.report.hosts[0].cells_run, run.report.scheduled_cells);
        assert!(run.report.transfer_j == 0.0, "no network on one host");
        assert!(run.report.makespan_s > 0.0);
        // Host span + one trial span per cell.
        assert_eq!(run.report.trace.len(), 1 + run.report.scheduled_cells);
    }

    #[test]
    fn multi_host_grid_is_byte_identical_to_single_host() {
        let base = run_grid_cluster(
            &systems(),
            &small_meta(),
            &[10.0],
            &spec(FaultPlan::default()),
            &opts(1),
            &ClusterOptions::single_host(),
            None,
        )
        .unwrap();
        for hosts in [2, 4] {
            let run = run_grid_cluster(
                &systems(),
                &small_meta(),
                &[10.0],
                &spec(FaultPlan::default()),
                &opts(hosts),
                &ClusterOptions::uniform(hosts),
                None,
            )
            .unwrap();
            assert_eq!(run.grid, base.grid, "{hosts} hosts changed the grid");
            assert!(run.report.transfer_j > 0.0, "workers must pay transfers");
            assert_eq!(run.report.n_hosts, hosts);
        }
    }

    #[test]
    fn cluster_chaos_recovers_and_reports_waste() {
        let chaos = FaultPlan {
            host_crash_p: 0.25,
            host_straggler_p: 0.2,
            host_straggler_slowdown: 4.0,
            host_partition_p: 0.2,
            host_partition_s: 3.0,
            ..FaultPlan::default()
        };
        let clean = run_grid_cluster(
            &systems(),
            &small_meta(),
            &[10.0],
            &spec(FaultPlan::default()),
            &opts(2),
            &ClusterOptions::uniform(4),
            None,
        )
        .unwrap();
        let run = run_grid_cluster(
            &systems(),
            &small_meta(),
            &[10.0],
            &spec(chaos),
            &opts(2),
            &ClusterOptions::uniform(4),
            None,
        )
        .unwrap();
        // Host faults never change the grid artefact...
        assert_eq!(run.grid.points, clean.grid.points);
        // ...but the cluster accounting records the damage and recovery.
        let r = &run.report;
        assert!(
            r.host_crashes + r.stragglers + r.partitions > 0,
            "chaos must fire"
        );
        assert!(r.retried_cells >= r.host_crashes);
        assert!(r.wasted_j > 0.0 || r.host_crashes == 0);
        let delivered: usize = r.hosts.iter().map(|h| h.cells_run).sum();
        assert_eq!(delivered, r.scheduled_cells, "every cell must complete");
        // And the report itself is reproducible.
        let again = run_grid_cluster(
            &systems(),
            &small_meta(),
            &[10.0],
            &spec(chaos),
            &opts(4),
            &ClusterOptions::uniform(4),
            None,
        )
        .unwrap();
        assert_eq!(again.report, run.report, "report must be jobs-invariant");
        assert_eq!(again.report.fingerprint(), run.report.fingerprint());
    }

    #[test]
    fn report_text_and_metrics_are_complete() {
        let run = run_grid_cluster(
            &systems(),
            &small_meta(),
            &[10.0],
            &spec(FaultPlan::default()),
            &opts(2),
            &ClusterOptions::uniform(2),
            None,
        )
        .unwrap();
        let text = run.report.to_text();
        assert!(text.contains("cluster: 2 hosts"));
        assert!(text.contains("host 0 ["));
        assert!(text.contains("host 1 ["));
        let mut reg = MetricsRegistry::new();
        run.report.export_metrics(&mut reg);
        assert_eq!(reg.counter("cluster_hosts"), 2);
        assert_eq!(
            reg.counter("cluster_scheduled_cells"),
            run.report.scheduled_cells as u64
        );
        assert!(reg.sum("cluster_makespan_s") > 0.0);
    }
}
