//! The measurement protocol of the paper's §3.1–§3.2.
//!
//! One [`BenchmarkPoint`] = one AutoML system run on one dataset under one
//! search budget with one seed: the dataset splits 66/34 into train/test,
//! the system fits on the training part (metering the execution stage on
//! its own tracker), the deployed predictor scores balanced accuracy on the
//! test part (metering inference on a second tracker), and per-prediction
//! energy is normalised by the *nominal* test-row count.

use crate::checkpoint;
use green_automl_dataset::split::train_test_split;
use green_automl_dataset::{Dataset, DatasetMeta, MaterializeOptions};
use green_automl_energy::rng::SplitMix64;
use green_automl_energy::trace::span_id;
use green_automl_energy::{CostTracker, Measurement, SpanKind, Trace};
use green_automl_ml::metrics::balanced_accuracy;
use green_automl_ml::EvalCache;
use green_automl_systems::{AutoMlSystem, FitContext, RunSpec, RunSpecError, SystemId};
use std::path::Path;

/// The paper's search-budget grid: 10 s, 30 s, 1 min, 5 min.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetGrid;

impl BudgetGrid {
    /// The four budgets, seconds.
    pub fn paper() -> [f64; 4] {
        [10.0, 30.0, 60.0, 300.0]
    }
}

/// How to materialise datasets, repeat runs, and schedule the grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkOptions {
    /// Dataset materialisation profile.
    pub materialize: MaterializeOptions,
    /// Repetitions per (system, dataset, budget) cell (the paper uses 10).
    pub runs: usize,
    /// Test fraction of the 66/34 split.
    pub test_frac: f64,
    /// Worker threads for [`run_grid`]: `0` = one per available core,
    /// `1` = serial. Results are byte-identical at every setting.
    pub parallelism: usize,
    /// Memoise evaluations in a grid-wide [`EvalCache`]. Hits skip the
    /// real compute but replay the recorded virtual-energy charges, so
    /// every point is byte-identical with the cache on or off.
    pub eval_cache: bool,
}

impl Default for BenchmarkOptions {
    fn default() -> Self {
        BenchmarkOptions {
            materialize: MaterializeOptions::benchmark(),
            runs: 3,
            test_frac: 0.34,
            parallelism: 0,
            eval_cache: true,
        }
    }
}

impl BenchmarkOptions {
    /// A quick profile for tests.
    pub fn quick() -> Self {
        BenchmarkOptions {
            materialize: MaterializeOptions::tiny(),
            runs: 1,
            test_frac: 0.34,
            parallelism: 0,
            eval_cache: true,
        }
    }
}

/// One measured run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkPoint {
    /// System identity.
    pub system: SystemId,
    /// Dataset name.
    pub dataset: String,
    /// Requested budget, seconds.
    pub budget_s: f64,
    /// Run seed.
    pub seed: u64,
    /// Test balanced accuracy.
    pub balanced_accuracy: f64,
    /// Execution-stage measurement.
    pub execution: Measurement,
    /// Inference energy per prediction, kWh.
    pub inference_kwh_per_row: f64,
    /// Inference seconds per prediction.
    pub inference_s_per_row: f64,
    /// Models answering at inference.
    pub n_models: usize,
    /// Pipelines evaluated during search.
    pub n_evaluations: usize,
    /// Trials killed by injected faults during the search.
    pub n_trial_faults: usize,
    /// Energy charged to killed trials, Joules (a subset of `execution`).
    pub wasted_j: f64,
    /// Merged execution + inference trace when the spec enabled tracing
    /// (execution spans on track 0, inference spans on track 1). `None`
    /// when tracing was off or the point was replayed from a checkpoint.
    pub trace: Option<Trace>,
}

/// Run `system` on `meta` under `spec_base` (budget/cores/device/
/// constraints) once, with `opts` controlling materialisation.
pub fn run_once(
    system: &dyn AutoMlSystem,
    meta: &DatasetMeta,
    spec_base: &RunSpec,
    opts: &BenchmarkOptions,
) -> BenchmarkPoint {
    let m_opts = MaterializeOptions {
        seed: spec_base.seed,
        ..opts.materialize
    };
    let ds = meta.materialize(&m_opts);
    run_once_on(system, meta, &ds, spec_base, opts)
}

/// [`run_once`] on an already-materialised dataset — the path the parallel
/// grid takes so one [`DatasetCache`] entry serves every (system, budget)
/// cell that shares a (dataset, seed) pair.
///
/// With `opts.eval_cache` set this builds a run-local [`EvalCache`], so
/// duplicate evaluations *within* the fit (revisited configs, repeated
/// rungs) are still memoised; [`run_once_in`] is the grid path where one
/// cache is shared across every cell.
pub fn run_once_on(
    system: &dyn AutoMlSystem,
    meta: &DatasetMeta,
    ds: &Dataset,
    spec_base: &RunSpec,
    opts: &BenchmarkOptions,
) -> BenchmarkPoint {
    let local = opts.eval_cache.then(EvalCache::new);
    let ctx = match &local {
        Some(cache) => FitContext::with_cache(cache),
        None => FitContext::default(),
    };
    run_once_in(system, meta, ds, spec_base, opts, &ctx)
}

/// [`run_once_on`] under an explicit [`FitContext`] — the grid calls this
/// with a context pointing at its shared, grid-wide [`EvalCache`].
pub fn run_once_in(
    system: &dyn AutoMlSystem,
    meta: &DatasetMeta,
    ds: &Dataset,
    spec_base: &RunSpec,
    opts: &BenchmarkOptions,
    ctx: &FitContext<'_>,
) -> BenchmarkPoint {
    let (train, test) = train_test_split(ds, opts.test_frac, spec_base.seed ^ 0x66_34);

    let run = system.fit_with(&train, spec_base, ctx);

    // Inference stage on its own meter (and, when tracing, its own tracer
    // seeded apart from the execution tracer so merged span ids stay
    // unique).
    let mut inf = CostTracker::new(spec_base.device, spec_base.cores);
    if spec_base.trace {
        inf.enable_tracing(span_id(spec_base.seed, system.id().stable_hash() ^ 0x1f62));
        inf.span_open(SpanKind::System, || system.id().to_string());
        inf.span_open(SpanKind::Stage, || "inference".to_string());
        inf.span_open(SpanKind::Dataset, || meta.name.to_string());
    }
    let pred = run.predictor.predict(&test, &mut inf);
    let bal = balanced_accuracy(&test.labels, &pred, test.n_classes);
    let inf_m = inf.measurement();
    let nominal_rows = test.nominal_rows().max(1.0);

    // Execution spans keep track 0; inference spans render on track 1.
    let trace = match (run.trace, inf.take_trace()) {
        (exec, inference) if exec.is_none() && inference.is_none() => None,
        (exec, inference) => {
            let inference = inference.map(|mut t| {
                t.set_track(1);
                t
            });
            Some(Trace::merge(exec.into_iter().chain(inference)))
        }
    };

    BenchmarkPoint {
        system: system.id(),
        dataset: meta.name.to_string(),
        budget_s: spec_base.budget_s,
        seed: spec_base.seed,
        balanced_accuracy: bal,
        execution: run.execution,
        inference_kwh_per_row: inf_m.kwh() / nominal_rows,
        inference_s_per_row: inf_m.duration_s / nominal_rows,
        n_models: run.predictor.n_models(),
        n_evaluations: run.n_evaluations,
        n_trial_faults: run.n_trial_faults,
        wasted_j: run.wasted_j,
        trace,
    }
}

/// One schedulable unit of the grid: a (system, dataset, seed) fit that
/// yields one point (budgeted) or one point per budget (budget-free).
pub(crate) struct GridCell {
    pub(crate) system_idx: usize,
    pub(crate) dataset_idx: usize,
    pub(crate) seed: u64,
    /// `Some(b)` runs at budget `b`; `None` is the budget-free fit that
    /// Fig. 3 reports at every budget.
    pub(crate) budget_s: Option<f64>,
}

/// One grid cell that panicked, with enough context to rerun it.
#[derive(Debug, Clone, PartialEq)]
pub struct CellFailure {
    /// Cell index in the reference serial enumeration.
    pub cell: usize,
    /// System identity.
    pub system: SystemId,
    /// Dataset name.
    pub dataset: String,
    /// Budget of the failed cell (`None` for a budget-free system).
    pub budget_s: Option<f64>,
    /// Run seed of the failed cell.
    pub seed: u64,
    /// The panic message.
    pub message: String,
}

/// The complete result of a fault-tolerant grid run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GridRun {
    /// Successful points, in the reference serial cell order.
    pub points: Vec<BenchmarkPoint>,
    /// Cells that panicked, recorded instead of aborting the grid.
    pub failures: Vec<CellFailure>,
    /// Cells replayed from the checkpoint instead of recomputed.
    pub resumed_cells: usize,
    /// Evaluation-cache hits across the whole grid. Scheduling-dependent
    /// observability only — never part of the determinism guarantee.
    pub eval_cache_hits: u64,
    /// Evaluation-cache misses across the whole grid.
    pub eval_cache_misses: u64,
    /// Cell attempts lost to a simulated host crash mid-run and retried
    /// with backoff on a surviving host. Deterministic per cluster
    /// topology (and zero on a single host).
    pub retried_cells: usize,
    /// Cells speculatively re-executed because their host straggled past
    /// the deterministic deadline; the losing copy is charged as waste.
    pub speculated_cells: usize,
    /// Queued cells drained off a crashed host and re-sharded onto
    /// survivors (not counting the in-flight attempt, which `retried`
    /// covers).
    pub requeued_cells: usize,
}

/// Enumerate grid cells in the reference serial order:
/// system → dataset → run → budget.
pub(crate) fn enumerate_cells(
    systems: &[Box<dyn AutoMlSystem>],
    datasets: &[DatasetMeta],
    budgets: &[f64],
    spec_base: &RunSpec,
    opts: &BenchmarkOptions,
) -> Vec<GridCell> {
    let mut cells = Vec::new();
    for (system_idx, system) in systems.iter().enumerate() {
        for (dataset_idx, meta) in datasets.iter().enumerate() {
            for run in 0..opts.runs {
                let seed = spec_base.seed ^ (run as u64 * 0x9e37) ^ (meta.openml_id as u64);
                if system.budget_free() {
                    cells.push(GridCell {
                        system_idx,
                        dataset_idx,
                        seed,
                        budget_s: None,
                    });
                } else {
                    for &b in budgets {
                        if b < system.min_budget_s() {
                            continue;
                        }
                        cells.push(GridCell {
                            system_idx,
                            dataset_idx,
                            seed,
                            budget_s: Some(b),
                        });
                    }
                }
            }
        }
    }
    cells
}

/// Hash everything that determines the grid's output, so a checkpoint file
/// can refuse to replay cells from a differently-configured grid.
///
/// Deliberately **excludes** cluster topology (host count, devices,
/// network): a shard written at one (hosts × jobs) shape must replay at
/// any other, because the points themselves are placement-invariant.
pub(crate) fn grid_fingerprint(
    systems: &[Box<dyn AutoMlSystem>],
    datasets: &[DatasetMeta],
    budgets: &[f64],
    spec_base: &RunSpec,
    opts: &BenchmarkOptions,
) -> u64 {
    let mut words: Vec<u64> = vec![2]; // format version
    words.extend(
        systems
            .iter()
            .map(|s| checkpoint::fingerprint_str(s.name())),
    );
    words.extend(datasets.iter().map(|m| m.openml_id as u64));
    words.extend(budgets.iter().map(|b| b.to_bits()));
    words.extend([
        opts.runs as u64,
        opts.test_frac.to_bits(),
        opts.materialize.max_rows as u64,
        opts.materialize.min_rows_per_class as u64,
        opts.materialize.max_features as u64,
        opts.materialize.max_row_frac.to_bits(),
        spec_base.seed,
        spec_base.cores as u64,
        spec_base.fault.seed,
        spec_base.fault.trial_crash_p.to_bits(),
        spec_base.fault.trial_timeout_p.to_bits(),
        spec_base.fault.trial_oom_p.to_bits(),
        spec_base.fault.replica_crash_p.to_bits(),
        spec_base.fault.replica_restart_s.to_bits(),
        spec_base.fault.host_crash_p.to_bits(),
        spec_base.fault.host_straggler_p.to_bits(),
        spec_base.fault.host_straggler_slowdown.to_bits(),
        spec_base.fault.host_partition_p.to_bits(),
        spec_base.fault.host_partition_s.to_bits(),
    ]);
    checkpoint::fingerprint(&words)
}

/// Run the full grid fault-tolerantly: every system × dataset × budget ×
/// seed, with per-cell panic isolation and optional checkpoint/resume.
///
/// Budgets below a system's floor are skipped; TabPFN (budget-free) is
/// measured once per seed and reported at every budget, as in Fig. 3.
/// Cells are scheduled over `opts.parallelism` worker threads (0 = all
/// cores) and each (dataset, seed) pair is materialised once and shared —
/// but because every cell owns its own `CostTracker` and PRNG streams are
/// derived from the cell seed alone, the returned points are **byte-
/// identical, in the same order, at every parallelism setting**.
///
/// A cell that panics becomes a [`CellFailure`] in the result; the grid
/// itself never aborts. With `checkpoint_path` set, every finished cell is
/// flushed to disk as it completes and a rerun of the same grid replays
/// completed cells instead of recomputing them — a killed `repro` run
/// resumes where it died.
pub fn run_grid_checked(
    systems: &[Box<dyn AutoMlSystem>],
    datasets: &[DatasetMeta],
    budgets: &[f64],
    spec_base: &RunSpec,
    opts: &BenchmarkOptions,
    checkpoint_path: Option<&Path>,
) -> Result<GridRun, RunSpecError> {
    crate::cluster::run_grid_cluster(
        systems,
        datasets,
        budgets,
        spec_base,
        opts,
        &crate::cluster::ClusterOptions::single_host(),
        checkpoint_path,
    )
    .map(|run| run.grid)
}

/// [`run_grid_checked`] without checkpointing, returning the successful
/// points only (failed cells are dropped; panics in cells still do not
/// abort the grid).
///
/// # Panics
///
/// Panics if `spec_base` fails [`RunSpec::validate`] — use
/// [`run_grid_checked`] to handle malformed specs as typed errors.
pub fn run_grid(
    systems: &[Box<dyn AutoMlSystem>],
    datasets: &[DatasetMeta],
    budgets: &[f64],
    spec_base: &RunSpec,
    opts: &BenchmarkOptions,
) -> Vec<BenchmarkPoint> {
    run_grid_checked(systems, datasets, budgets, spec_base, opts, None)
        .expect("invalid RunSpec passed to run_grid")
        .points
}

/// An aggregated cell of the benchmark grid.
#[derive(Debug, Clone, PartialEq)]
pub struct AveragedPoint {
    /// System identity.
    pub system: SystemId,
    /// Budget, seconds.
    pub budget_s: f64,
    /// Bootstrap mean of balanced accuracy across datasets/runs.
    pub balanced_accuracy: f64,
    /// Bootstrap std-dev of the accuracy mean.
    pub accuracy_std: f64,
    /// Mean execution energy, kWh.
    pub execution_kwh: f64,
    /// Mean actual execution duration, seconds.
    pub execution_s: f64,
    /// Std-dev of the actual execution duration.
    pub execution_s_std: f64,
    /// Mean inference energy per prediction, kWh.
    pub inference_kwh_per_row: f64,
    /// Mean inference seconds per prediction.
    pub inference_s_per_row: f64,
    /// Points aggregated.
    pub n_points: usize,
}

/// Aggregate raw points per (system, budget), reporting uncertainty "by
/// repeatedly sampling one result out of N runs with replacement" (§3.1).
pub fn average_points(
    points: &[BenchmarkPoint],
    bootstrap: usize,
    seed: u64,
) -> Vec<AveragedPoint> {
    let mut keys: Vec<(SystemId, f64)> = points.iter().map(|p| (p.system, p.budget_s)).collect();
    keys.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    keys.dedup();

    let mut rng = SplitMix64::seed_from_u64(seed);
    keys.into_iter()
        .map(|(system, budget_s)| {
            let cell: Vec<&BenchmarkPoint> = points
                .iter()
                .filter(|p| p.system == system && p.budget_s == budget_s)
                .collect();
            let n = cell.len().max(1);
            let mean = |f: &dyn Fn(&BenchmarkPoint) -> f64| -> f64 {
                cell.iter().map(|p| f(p)).sum::<f64>() / n as f64
            };
            // Bootstrap the accuracy mean.
            let mut boots = Vec::with_capacity(bootstrap.max(1));
            for _ in 0..bootstrap.max(1) {
                let s: f64 = (0..n)
                    .map(|_| cell[rng.gen_range(0..n)].balanced_accuracy)
                    .sum::<f64>()
                    / n as f64;
                boots.push(s);
            }
            let bmean = boots.iter().sum::<f64>() / boots.len() as f64;
            let bvar = boots.iter().map(|b| (b - bmean).powi(2)).sum::<f64>() / boots.len() as f64;

            let exec_s_mean = mean(&|p| p.execution.duration_s);
            let exec_s_var = cell
                .iter()
                .map(|p| (p.execution.duration_s - exec_s_mean).powi(2))
                .sum::<f64>()
                / n as f64;

            AveragedPoint {
                system,
                budget_s,
                balanced_accuracy: bmean,
                accuracy_std: bvar.sqrt(),
                execution_kwh: mean(&|p| p.execution.kwh()),
                execution_s: exec_s_mean,
                execution_s_std: exec_s_var.sqrt(),
                inference_kwh_per_row: mean(&|p| p.inference_kwh_per_row),
                inference_s_per_row: mean(&|p| p.inference_s_per_row),
                n_points: n,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use green_automl_dataset::amlb39;
    use green_automl_systems::{Caml, Flaml, TabPfn};

    fn small_meta() -> DatasetMeta {
        amlb39()
            .into_iter()
            .find(|m| m.name == "blood-transfusion-service-center")
            .unwrap()
    }

    #[test]
    fn run_once_produces_a_complete_point() {
        let sys = Flaml::default();
        let p = run_once(
            &sys,
            &small_meta(),
            &RunSpec::single_core(10.0, 0),
            &BenchmarkOptions::quick(),
        );
        assert_eq!(p.system, SystemId::Flaml);
        assert!(p.balanced_accuracy > 0.0);
        assert!(p.execution.kwh() > 0.0);
        assert!(p.inference_kwh_per_row > 0.0);
        assert!(p.n_models >= 1);
    }

    #[test]
    fn grid_skips_sub_minimum_budgets_and_expands_budget_free_systems() {
        let systems: Vec<Box<dyn AutoMlSystem>> = vec![
            Box::new(TabPfn::default()),
            Box::new(green_automl_systems::Tpot::default()),
        ];
        let datasets = vec![small_meta()];
        let points = run_grid(
            &systems,
            &datasets,
            &[10.0, 60.0],
            &RunSpec::single_core(10.0, 0),
            &BenchmarkOptions::quick(),
        );
        // TabPFN reports at both budgets from one run; TPOT only at 60s.
        let tabpfn: Vec<_> = points
            .iter()
            .filter(|p| p.system == SystemId::TabPfn)
            .collect();
        let tpot: Vec<_> = points
            .iter()
            .filter(|p| p.system == SystemId::Tpot)
            .collect();
        assert_eq!(tabpfn.len(), 2);
        assert_eq!(tpot.len(), 1);
        assert_eq!(tpot[0].budget_s, 60.0);
    }

    #[test]
    fn averaging_reduces_to_means() {
        let sys = Caml::default();
        let opts = BenchmarkOptions {
            runs: 2,
            ..BenchmarkOptions::quick()
        };
        let points = run_grid(
            &[Box::new(sys) as Box<dyn AutoMlSystem>],
            &[small_meta()],
            &[10.0],
            &RunSpec::single_core(10.0, 0),
            &opts,
        );
        let avg = average_points(&points, 50, 0);
        assert_eq!(avg.len(), 1);
        let a = &avg[0];
        assert_eq!(a.n_points, 2);
        assert!(a.balanced_accuracy > 0.0 && a.balanced_accuracy <= 1.0);
        assert!(a.execution_s >= 10.0, "CAML uses its whole budget");
    }

    #[test]
    fn paper_budget_grid() {
        assert_eq!(BudgetGrid::paper(), [10.0, 30.0, 60.0, 300.0]);
    }

    /// Counts `fit` calls, so resume tests can prove replayed cells were
    /// not recomputed.
    struct Counting {
        inner: Flaml,
        fits: std::sync::Arc<std::sync::atomic::AtomicUsize>,
    }

    impl AutoMlSystem for Counting {
        fn name(&self) -> &'static str {
            self.inner.name()
        }
        fn design(&self) -> green_automl_systems::DesignCard {
            self.inner.design()
        }
        fn fit_with(
            &self,
            train: &Dataset,
            spec: &RunSpec,
            ctx: &FitContext<'_>,
        ) -> green_automl_systems::AutoMlRun {
            self.fits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.inner.fit_with(train, spec, ctx)
        }
    }

    /// A system whose every fit panics — the grid must record it, not die.
    struct Explosive;

    impl AutoMlSystem for Explosive {
        fn name(&self) -> &'static str {
            "Explosive"
        }
        fn design(&self) -> green_automl_systems::DesignCard {
            green_automl_systems::DesignCard {
                system: SystemId::Custom("Explosive"),
                search_space: "-",
                search_init: "-",
                search: "-",
                ensembling: "-",
            }
        }
        fn fit_with(
            &self,
            _train: &Dataset,
            spec: &RunSpec,
            _ctx: &FitContext<'_>,
        ) -> green_automl_systems::AutoMlRun {
            panic!("simulated infrastructure failure at seed {}", spec.seed);
        }
    }

    fn tmp_ckpt(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("green-automl-benchmark-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn a_panicking_cell_is_recorded_and_the_grid_survives() {
        let systems: Vec<Box<dyn AutoMlSystem>> =
            vec![Box::new(Explosive), Box::new(TabPfn::default())];
        let run = run_grid_checked(
            &systems,
            &[small_meta()],
            &[10.0],
            &RunSpec::single_core(10.0, 0),
            &BenchmarkOptions::quick(),
            None,
        )
        .unwrap();
        assert_eq!(run.failures.len(), 1);
        let f = &run.failures[0];
        assert_eq!(f.system, SystemId::Custom("Explosive"));
        assert!(f.message.contains("simulated infrastructure failure"));
        // TabPFN's point is still there: the neighbour cell was unharmed.
        assert_eq!(run.points.len(), 1);
        assert_eq!(run.points[0].system, SystemId::TabPfn);
    }

    #[test]
    fn run_grid_checked_rejects_malformed_specs() {
        let systems: Vec<Box<dyn AutoMlSystem>> = vec![Box::new(TabPfn::default())];
        let bad = RunSpec {
            budget_s: -1.0,
            ..RunSpec::single_core(10.0, 0)
        };
        let err = run_grid_checked(
            &systems,
            &[small_meta()],
            &[10.0],
            &bad,
            &BenchmarkOptions::quick(),
            None,
        );
        assert!(err.is_err());
    }

    #[test]
    fn killed_grid_resumes_from_completed_cells() {
        let path = tmp_ckpt("resume.ckpt");
        let _ = std::fs::remove_file(&path);
        let fits = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let opts = BenchmarkOptions {
            runs: 2,
            ..BenchmarkOptions::quick()
        };
        let spec = RunSpec::single_core(10.0, 0);
        let datasets = [small_meta()];
        let grid = |fits: &std::sync::Arc<std::sync::atomic::AtomicUsize>| {
            let systems: Vec<Box<dyn AutoMlSystem>> = vec![Box::new(Counting {
                inner: Flaml::default(),
                fits: std::sync::Arc::clone(fits),
            })];
            run_grid_checked(&systems, &datasets, &[10.0], &spec, &opts, Some(&path)).unwrap()
        };

        // First run computes both cells and checkpoints them.
        let first = grid(&fits);
        assert_eq!(first.resumed_cells, 0);
        assert_eq!(fits.load(std::sync::atomic::Ordering::Relaxed), 2);

        // A rerun replays everything: zero new fits, identical points.
        let second = grid(&fits);
        assert_eq!(second.resumed_cells, 2);
        assert_eq!(fits.load(std::sync::atomic::Ordering::Relaxed), 2);
        assert_eq!(second.points, first.points);

        // Simulate a kill during cell 1: chop its records off the file.
        // Only that cell recomputes, and the merged result is unchanged.
        let text = std::fs::read_to_string(&path).unwrap();
        let keep: Vec<&str> = text
            .lines()
            .filter(|l| {
                let c: Vec<&str> = l.split('\t').collect();
                c.len() < 2 || c[1] != "1"
            })
            .collect();
        std::fs::write(&path, format!("{}\n", keep.join("\n"))).unwrap();

        let third = grid(&fits);
        assert_eq!(third.resumed_cells, 1);
        assert_eq!(fits.load(std::sync::atomic::Ordering::Relaxed), 3);
        assert_eq!(third.points, first.points);
    }
}
