//! # green-automl
//!
//! A holistic **energy benchmark for AutoML on tabular data** — a Rust
//! reproduction of *"How Green is AutoML for Tabular Data?"* (Neutatz,
//! Lindauer & Abedjan, EDBT 2025).
//!
//! The paper measures how much energy state-of-the-art AutoML systems
//! consume across the three Green-AutoML stages — *development*,
//! *execution*, and *inference* — on the 39-dataset AMLB suite, and derives
//! a guideline for picking the most energy-efficient system. This crate
//! re-exports the whole reproduction stack:
//!
//! * [`energy`] — the operation-accounted virtual power meter (the
//!   CodeCarbon/RAPL stand-in);
//! * [`dataset`] — synthetic materialisations of the AMLB datasets;
//! * [`ml`] — the from-scratch classifier/preprocessor substrate;
//! * [`optim`] — Bayesian optimisation, NSGA-II, successive halving;
//! * [`systems`] — the seven simulated AutoML systems (AutoGluon,
//!   AutoSklearn 1/2, FLAML, TabPFN, TPOT, CAML);
//! * [`core`] — the three-stage benchmark, the development-stage tuner, and
//!   the Fig.-8 guideline engine;
//! * [`serve`] — the energy-metered inference serving layer (model
//!   registry, micro-batching scheduler, traffic replay, SLO/carbon
//!   report) and the multi-tenant fleet on top of it (carbon-aware
//!   regional routing, replica autoscaling, per-tenant energy budgets);
//! * [`experiments`] — one runner per paper table/figure (also available as
//!   the `repro` binary).
//!
//! ## Quickstart
//!
//! ```
//! use green_automl::prelude::*;
//!
//! // A small tabular task (or load your own CSV via `dataset::csv`).
//! let data = TaskSpec::new("demo", 300, 8, 2).generate();
//! let (train, test) = train_test_split(&data, 0.34, 0);
//!
//! // Run an AutoML system under a 30-virtual-second budget...
//! let run = Flaml::default().fit(&train, &RunSpec::single_core(30.0, 0));
//!
//! // ...and meter the inference stage separately.
//! let mut meter = CostTracker::new(Device::xeon_gold_6132(), 1);
//! let predictions = run.predictor.predict(&test, &mut meter);
//! let accuracy = balanced_accuracy(&test.labels, &predictions, test.n_classes);
//!
//! assert!(accuracy > 0.5);
//! assert!(run.execution.kwh() > 0.0);
//! assert!(meter.measurement().kwh() > 0.0);
//! ```

pub use green_automl_core as core;
pub use green_automl_dataset as dataset;
pub use green_automl_energy as energy;
pub use green_automl_experiments as experiments;
pub use green_automl_ml as ml;
pub use green_automl_optim as optim;
pub use green_automl_serve as serve;
pub use green_automl_systems as systems;

/// The most common imports in one place.
pub mod prelude {
    pub use green_automl_core::{
        recommend, run_grid_checked, run_grid_cluster, trillion_prediction_cost, BenchmarkOptions,
        CellFailure, ClusterGridRun, ClusterOptions, ClusterReport, DevTuneOptions, DevTuner,
        GridRun, HolisticReport, HostSpec, HostStats, NetworkModel, Priority, Recommendation,
        ServingProfile, Stage, TaskProfile,
    };
    pub use green_automl_dataset::split::train_test_split;
    pub use green_automl_dataset::{
        amlb39, dev_binary_pool, Dataset, MaterializeOptions, TaskSpec,
    };
    pub use green_automl_energy::{
        CarbonProfile, CostTracker, Device, EmissionsEstimate, FaultInjector, FaultKind, FaultPlan,
        FaultPlanError, GridIntensity, Histogram, HostFault, Measurement, MetricsRegistry,
        OpCounts, Span, SpanKind, Trace, Tracer, TrialFault,
    };
    pub use green_automl_ml::metrics::balanced_accuracy;
    pub use green_automl_ml::{ModelSpec, Pipeline, PreprocSpec};
    pub use green_automl_serve::{
        run_fleet, serve, AutoscaleEvent, AutoscalePolicy, FleetConfig, FleetReport, FleetTrace,
        FleetTrafficConfig, ModelRegistry, RegionSpec, RouterPolicy, ScaleReason, ServeConfig,
        ServingReport, Shape, SloPolicy, TenantSpec, TenantTraffic, TrafficConfig,
    };
    pub use green_automl_systems::{
        all_systems, AutoGluon, AutoGluonQuality, AutoMlSystem, AutoSklearn1, AutoSklearn2, Caml,
        CamlParams, Constraints, Flaml, Predictor, RunSpec, RunSpecError, SystemId, TabPfn, Tpot,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_are_coherent() {
        let systems = all_systems();
        assert_eq!(systems.len(), 7);
        assert_eq!(amlb39().len(), 39);
        assert_eq!(SystemId::Flaml.to_string(), "FLAML");
        assert_eq!("TabPFN".parse::<SystemId>(), Ok(SystemId::TabPfn));
        assert_eq!(Trace::empty().spans.len(), 0);
        assert_eq!(RouterPolicy::CarbonBlind.name(), "carbon-blind");
        assert!(!AutoscalePolicy::pinned().wants_up(1_000, 1));
        assert_eq!(
            CarbonProfile::flat(GridIntensity::SWEDEN).intensity_at(0.0),
            GridIntensity::SWEDEN.kg_co2_per_kwh
        );
        let profile = TaskProfile {
            has_dev_compute: false,
            many_executions: false,
            budget_s: 60.0,
            n_classes: 2,
            gpu_available: false,
            priority: Priority::Accuracy,
            serving: None,
        };
        assert_eq!(recommend(&profile), Recommendation::AutoGluon);
    }
}
