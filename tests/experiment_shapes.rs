//! Integration tests asserting that the *shape* of the paper's headline
//! results emerges from a reduced-scale run of the experiment harness —
//! who wins, by roughly what factor, where crossovers fall.

use green_automl::experiments::{run_experiment, ExpConfig, ExperimentOutput, SharedPoints};
use std::sync::{Mutex, OnceLock};

fn cfg() -> ExpConfig {
    // Slightly richer than the unit-test smoke profile: a few datasets, two
    // budgets, benchmark materialisation.
    let mut cfg = ExpConfig::fast();
    cfg.n_datasets = 3;
    cfg.runs = 1;
    cfg.budgets = vec![30.0, 60.0];
    cfg.devtune_iters = 4;
    cfg.devtune_top_k = 3;
    cfg
}

/// The benchmark grid is expensive; compute it once for the whole file.
fn shared() -> &'static Mutex<SharedPoints> {
    static SHARED: OnceLock<Mutex<SharedPoints>> = OnceLock::new();
    SHARED.get_or_init(|| Mutex::new(SharedPoints::default()))
}

fn run_shared(id: &str) -> ExperimentOutput {
    let mut guard = shared().lock().expect("no poisoned grid");
    run_experiment(id, &cfg(), &mut guard).unwrap_or_else(|| panic!("{id} runs"))
}

fn cell(table: &green_automl::experiments::Table, key: &str, col: usize) -> f64 {
    table
        .rows
        .iter()
        .find(|r| r[0] == key)
        .unwrap_or_else(|| panic!("row {key} in {}", table.title))[col]
        .parse()
        .unwrap_or_else(|e| panic!("cell ({key},{col}) not numeric: {e}"))
}

#[test]
fn fig3_shape_tabpfn_cheapest_execution_most_expensive_inference() {
    let out = run_shared("fig3");
    let main = &out.tables[0];
    // Columns: system, budget, acc, acc_std, exec_kwh, inf_kwh, n.
    let rows: Vec<(&str, f64, f64)> = main
        .rows
        .iter()
        .map(|r| {
            (
                r[0].as_str(),
                r[4].parse::<f64>().expect("exec kwh"),
                r[5].parse::<f64>().expect("inf kwh"),
            )
        })
        .collect();
    let exec_min = rows
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("rows");
    assert_eq!(
        exec_min.0, "TabPFN",
        "TabPFN must have the cheapest execution"
    );
    let inf_max = rows
        .iter()
        .max_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"))
        .expect("rows");
    assert_eq!(
        inf_max.0, "TabPFN",
        "TabPFN must have the costliest inference"
    );
}

#[test]
fn table7_shape_caml_strict_askl_overshoots() {
    let out = run_shared("table7");
    let t = &out.tables[0];
    // Rows are ordered by punctuality at the largest budget.
    let order: Vec<&str> = t.rows.iter().map(|r| r[0].as_str()).collect();
    let pos = |name: &str| {
        order
            .iter()
            .position(|&s| s == name)
            .unwrap_or_else(|| panic!("{name} missing from {order:?}"))
    };
    assert_eq!(pos("TabPFN"), 0, "TabPFN is the most punctual (0.29s flat)");
    assert!(
        pos("CAML") < pos("AutoSklearn1"),
        "CAML adheres strictly; ASKL1 overshoots (order {order:?})"
    );
}

#[test]
fn fig4_crossover_lands_in_the_right_decade() {
    let out = run_shared("fig4");
    let cross = &out.tables[1];
    assert!(!cross.rows.is_empty(), "a TabPFN crossover must exist");
    for row in &cross.rows {
        let n: f64 = row[2].parse().expect("crossover count");
        // The paper reports ~26k; our simulated testbed must land within a
        // couple of decades (the *existence* and magnitude matter).
        assert!(
            (1e2..1e8).contains(&n),
            "crossover {n:.0} vs {} outside plausible band",
            row[1]
        );
    }
}

#[test]
fn table4_spread_spans_orders_of_magnitude() {
    let out = run_shared("table4");
    let t = &out.tables[0];
    let kwh_tabpfn = cell(t, "TabPFN", 1);
    let kwh_flaml = cell(t, "FLAML", 1);
    assert!(
        kwh_tabpfn / kwh_flaml > 30.0,
        "TabPFN/FLAML trillion-prediction ratio {:.0}x too small (paper ~531x)",
        kwh_tabpfn / kwh_flaml
    );
    let kwh_ag = cell(t, "AutoGluon", 1);
    assert!(kwh_ag > kwh_flaml * 5.0, "ensembling must cost at scale");
}

#[test]
fn repro_outputs_are_written_to_disk() {
    let cfg = ExpConfig::smoke();
    let mut shared = SharedPoints::default();
    let out = run_experiment("table1", &cfg, &mut shared).expect("table1 runs");
    let dir = std::env::temp_dir().join("green-automl-shape-test");
    let _ = std::fs::remove_dir_all(&dir);
    out.write_to(&dir).expect("writes");
    let txt = std::fs::read_to_string(dir.join("table1.txt")).expect("txt exists");
    assert!(txt.contains("AutoGluon"));
    assert!(dir.join("table1.0.csv").exists());
    let _ = std::fs::remove_dir_all(&dir);
}
