//! The robustness headline, mirroring `serving_equivalence`: with a seeded
//! chaos [`FaultPlan`] active, the benchmark grid and the serving layer
//! still produce **bit-identical** results at every worker count.
//! Injected failures are part of the deterministic record — a function of
//! `(seed, site)` only — never of thread scheduling, so a chaos run is as
//! replayable as a clean one.

use green_automl::core::BenchmarkPoint;
use green_automl::prelude::*;

const SEED: u64 = 5;

fn chaos_plan() -> FaultPlan {
    FaultPlan::chaos(SEED)
}

// ---------------------------------------------------------------- grid ----

fn faulted_grid(workers: usize) -> GridRun {
    let systems = all_systems();
    let datasets: Vec<_> = amlb39().into_iter().take(2).collect();
    // 60 s clears every budget floor, so all seven systems participate.
    let budgets = [10.0, 60.0];
    let spec = RunSpec::single_core(10.0, SEED).with_fault(chaos_plan());
    let opts = BenchmarkOptions {
        materialize: MaterializeOptions::tiny(),
        runs: 2,
        test_frac: 0.34,
        parallelism: workers,
        eval_cache: true,
    };
    run_grid_checked(&systems, &datasets, &budgets, &spec, &opts, None)
        .expect("the chaos spec is valid")
}

/// Every float in a point, as raw bit patterns (`-0.0` vs `0.0` or NaN
/// payload differences would be caught).
fn point_bits(p: &BenchmarkPoint) -> [u64; 13] {
    [
        p.budget_s.to_bits(),
        p.balanced_accuracy.to_bits(),
        p.execution.duration_s.to_bits(),
        p.execution.energy.package_j.to_bits(),
        p.execution.energy.dram_j.to_bits(),
        p.execution.energy.gpu_j.to_bits(),
        p.execution.ops.scalar_flops.to_bits(),
        p.execution.ops.matmul_flops.to_bits(),
        p.execution.ops.tree_steps.to_bits(),
        p.execution.ops.mem_bytes.to_bits(),
        p.inference_kwh_per_row.to_bits(),
        p.inference_s_per_row.to_bits(),
        p.wasted_j.to_bits(),
    ]
}

fn assert_points_identical(ctx: &str, serial: &[BenchmarkPoint], parallel: &[BenchmarkPoint]) {
    assert_eq!(serial.len(), parallel.len(), "{ctx}: point count");
    for (i, (a, b)) in serial.iter().zip(parallel).enumerate() {
        assert_eq!(a.system, b.system, "{ctx}[{i}]: system");
        assert_eq!(a.dataset, b.dataset, "{ctx}[{i}]: dataset");
        assert_eq!(a.seed, b.seed, "{ctx}[{i}]: seed");
        assert_eq!(a.n_models, b.n_models, "{ctx}[{i}]: n_models");
        assert_eq!(
            a.n_evaluations, b.n_evaluations,
            "{ctx}[{i}]: n_evaluations"
        );
        assert_eq!(
            a.n_trial_faults, b.n_trial_faults,
            "{ctx}[{i}]: n_trial_faults"
        );
        assert_eq!(
            point_bits(a),
            point_bits(b),
            "{ctx}[{i}]: float bits ({} on {})",
            a.system,
            a.dataset
        );
    }
}

#[test]
fn faulted_grid_is_bit_identical_at_every_worker_count() {
    let serial = faulted_grid(1);
    assert!(!serial.points.is_empty(), "the faulted grid must still run");
    let faults: usize = serial.points.iter().map(|p| p.n_trial_faults).sum();
    assert!(faults > 0, "the chaos plan must actually kill trials");
    for workers in [4, 8] {
        let parallel = faulted_grid(workers);
        assert_points_identical(
            &format!("grid @ {workers} workers"),
            &serial.points,
            &parallel.points,
        );
        assert_eq!(
            serial.failures, parallel.failures,
            "cell failures @ {workers} workers"
        );
    }
}

// ------------------------------------------------------------- serving ----

fn serve_chaos(predictor: &Predictor, pool: &Dataset, host_parallelism: usize) -> ServingReport {
    let trace = TrafficConfig {
        rps: 400.0,
        n_requests: 600,
        seed: 77,
    }
    .generate(pool.n_rows());
    let cfg = ServeConfig {
        host_parallelism,
        ..ServeConfig::cpu_testbed(3).with_fault(chaos_plan())
    };
    serve(predictor, pool, &trace, &cfg)
}

/// Every float in a serving report, as raw bit patterns.
fn report_bits(r: &ServingReport) -> [u64; 14] {
    [
        r.latency.p50_s.to_bits(),
        r.latency.p95_s.to_bits(),
        r.latency.p99_s.to_bits(),
        r.latency.mean_s.to_bits(),
        r.latency.max_s.to_bits(),
        r.mean_queue_depth.to_bits(),
        r.busy_j.to_bits(),
        r.idle_j.to_bits(),
        r.wasted_j.to_bits(),
        r.makespan_s.to_bits(),
        r.ops.scalar_flops.to_bits(),
        r.ops.matmul_flops.to_bits(),
        r.ops.tree_steps.to_bits(),
        r.ops.mem_bytes.to_bits(),
    ]
}

#[test]
fn faulted_serving_report_is_bit_identical_at_every_host_parallelism() {
    let data = TaskSpec::new("fault-eq-serve", 300, 6, 3).generate();
    let (train, test) = train_test_split(&data, 0.34, 11);
    let run = Flaml::default().fit(&train, &RunSpec::single_core(10.0, 11));

    let serial = serve_chaos(&run.predictor, &test, 1);
    assert!(
        serial.retried_requests > 0 || serial.failed_requests > 0,
        "the chaos plan must crash at least one replica attempt"
    );
    assert!(serial.wasted_j > 0.0, "crashed attempts must waste energy");

    for workers in [4, 8] {
        let parallel = serve_chaos(&run.predictor, &test, workers);
        // Structural equality first (counters, predictions, histogram)...
        assert_eq!(serial, parallel, "report @ {workers} host threads");
        // ...then the stricter bitwise check on every float field.
        assert_eq!(
            report_bits(&serial),
            report_bits(&parallel),
            "float bits @ {workers} host threads"
        );
    }
}
