//! The cluster executor's headline guarantee: the grid's scientific
//! output — points (every float by bits), span traces, failures, and the
//! sealed checkpoint records — is **byte-identical at every
//! (hosts × jobs) shape** in {1,2,4} × {1,2,4}, on a clean run and under
//! an active host-chaos [`FaultPlan`]; the cluster report is a pure
//! function of the topology (jobs-invariant); and a chaos run killed
//! mid-grid — shard journals truncated, the last record torn mid-line —
//! resumes per shard to the same bytes.

use green_automl::core::benchmark::BenchmarkPoint;
use green_automl::core::checkpoint::shard_path;
use green_automl::core::cluster::ClusterGridRun;
use green_automl::prelude::*;
use std::collections::HashMap;
use std::path::{Path, PathBuf};

const SEED: u64 = 11;
const SHAPES: [(usize, usize); 9] = [
    (1, 1),
    (1, 2),
    (1, 4),
    (2, 1),
    (2, 2),
    (2, 4),
    (4, 1),
    (4, 2),
    (4, 4),
];

/// One multi-budget cluster grid at the given (hosts, jobs) shape. The
/// shape sweeps run traced; the checkpointed runs don't (replayed points
/// deliberately carry no trace, so a traced spec could not round-trip).
fn cluster(
    hosts: usize,
    jobs: usize,
    fault: Option<FaultPlan>,
    ckpt: Option<&Path>,
) -> ClusterGridRun {
    let systems = all_systems();
    let datasets: Vec<_> = amlb39().into_iter().take(2).collect();
    let budgets = [10.0, 60.0];
    let mut spec = RunSpec::single_core(10.0, SEED);
    if ckpt.is_none() {
        spec = spec.with_trace();
    }
    if let Some(plan) = fault {
        spec = spec.with_fault(plan);
    }
    let opts = BenchmarkOptions {
        materialize: MaterializeOptions::tiny(),
        runs: 1,
        test_frac: 0.34,
        parallelism: jobs,
        eval_cache: true,
    };
    run_grid_cluster(
        &systems,
        &datasets,
        &budgets,
        &spec,
        &opts,
        &ClusterOptions::uniform(hosts),
        ckpt,
    )
    .expect("the equivalence spec is valid")
}

/// Every float in a point, as raw bit patterns (`-0.0` vs `0.0` or NaN
/// payload differences would be caught).
fn point_bits(p: &BenchmarkPoint) -> [u64; 13] {
    [
        p.budget_s.to_bits(),
        p.balanced_accuracy.to_bits(),
        p.execution.duration_s.to_bits(),
        p.execution.energy.package_j.to_bits(),
        p.execution.energy.dram_j.to_bits(),
        p.execution.energy.gpu_j.to_bits(),
        p.execution.ops.scalar_flops.to_bits(),
        p.execution.ops.matmul_flops.to_bits(),
        p.execution.ops.tree_steps.to_bits(),
        p.execution.ops.mem_bytes.to_bits(),
        p.inference_kwh_per_row.to_bits(),
        p.inference_s_per_row.to_bits(),
        p.wasted_j.to_bits(),
    ]
}

fn assert_grids_identical(ctx: &str, reference: &GridRun, other: &GridRun) {
    assert_eq!(
        reference.points.len(),
        other.points.len(),
        "{ctx}: point count"
    );
    for (i, (a, b)) in reference.points.iter().zip(&other.points).enumerate() {
        assert_eq!(
            point_bits(a),
            point_bits(b),
            "{ctx}[{i}]: float bits ({} on {})",
            a.system,
            a.dataset
        );
        // Serialized traces compare the full span tree — ids, nesting,
        // labels, and per-span energy — byte for byte.
        assert_eq!(
            a.trace.as_ref().map(Trace::to_jsonl),
            b.trace.as_ref().map(Trace::to_jsonl),
            "{ctx}[{i}]: trace ({} on {})",
            a.system,
            a.dataset
        );
    }
    // Structural equality last: covers every remaining field (system,
    // dataset, seed, n_models, n_evaluations, fault counters).
    assert_eq!(reference.points, other.points, "{ctx}: full points");
    assert_eq!(reference.failures, other.failures, "{ctx}: failures");
}

/// Run every shape under `fault`, asserting the grid artefact matches the
/// 1×1 reference bitwise and the cluster report depends on hosts only.
fn sweep_shapes(label: &str, fault: Option<FaultPlan>) -> Vec<ClusterGridRun> {
    let mut runs = Vec::new();
    let mut report_fp: HashMap<usize, u64> = HashMap::new();
    for (hosts, jobs) in SHAPES {
        let run = cluster(hosts, jobs, fault, None);
        if let Some(reference) = runs.first() {
            let reference: &ClusterGridRun = reference;
            assert_grids_identical(
                &format!("{label} @ {hosts}x{jobs}"),
                &reference.grid.clone(),
                &run.grid,
            );
        } else {
            assert!(!run.grid.points.is_empty(), "{label}: empty grid");
        }
        // The report is deterministic per topology: every jobs count at
        // the same host count must reproduce it byte for byte.
        let fp = run.report.fingerprint();
        match report_fp.get(&hosts) {
            None => {
                report_fp.insert(hosts, fp);
            }
            Some(&prev) => assert_eq!(
                fp, prev,
                "{label}: cluster report must be jobs-invariant at {hosts} hosts"
            ),
        }
        runs.push(run);
    }
    runs
}

#[test]
fn clean_grid_is_bit_identical_at_every_hosts_x_jobs_shape() {
    let runs = sweep_shapes("clean", None);
    // Multi-host clean runs still pay for dataset shipping and result
    // collection — the network is real, the science is unchanged.
    let four_hosts = &runs[6].report;
    assert_eq!(four_hosts.n_hosts, 4);
    assert!(four_hosts.transfer_j > 0.0, "workers must ship bytes");
    assert_eq!(four_hosts.host_crashes, 0, "clean run must not crash");
    let delivered: usize = four_hosts.hosts.iter().map(|h| h.cells_run).sum();
    assert_eq!(delivered, four_hosts.scheduled_cells);
}

/// The stock `cluster_chaos` rates are tuned for full-size grids; this
/// reduced one needs amplified host-fault probabilities so every fault
/// class actually fires (layered on the trial-chaos profile).
fn violent_chaos() -> FaultPlan {
    FaultPlan {
        host_crash_p: 0.20,
        host_straggler_p: 0.20,
        host_straggler_slowdown: 4.0,
        host_partition_p: 0.15,
        host_partition_s: 2.0,
        ..FaultPlan::chaos(SEED)
    }
}

#[test]
fn chaos_grid_is_bit_identical_at_every_hosts_x_jobs_shape() {
    let runs = sweep_shapes("chaos", Some(violent_chaos()));
    // The chaos plan must actually fire at the widest topology…
    let four_hosts = &runs[6].report;
    assert!(
        four_hosts.host_crashes + four_hosts.stragglers + four_hosts.partitions > 0,
        "host chaos must fire at 4 hosts"
    );
    // …and on trials too (cluster_chaos layers on the trial profile).
    let trial_faults: usize = runs[0].grid.points.iter().map(|p| p.n_trial_faults).sum();
    assert!(trial_faults > 0, "trial chaos must fire");
    // Recovery machinery is visible in the grid's scheduler counters at
    // 4 hosts whenever a crash happened, and a single host never retries.
    assert_eq!(runs[0].grid.retried_cells, 0);
    assert!(runs[6].grid.retried_cells >= four_hosts.host_crashes);
}

// ---------------------------------------------------------- checkpoint ----

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("green-automl-cluster-eq")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// All data lines sealed across a run's shard journals, sorted — the
/// topology-independent record set (headers excluded; every shard of one
/// run carries the same fingerprint header).
fn sorted_shard_records(path: &Path, n_hosts: usize) -> Vec<String> {
    let mut lines = Vec::new();
    for h in 0..n_hosts {
        let text = std::fs::read_to_string(shard_path(path, h, n_hosts)).expect("shard written");
        let mut it = text.lines();
        let header = it.next().expect("shard header");
        assert!(
            header.starts_with("green-automl-checkpoint"),
            "malformed shard header: {header}"
        );
        lines.extend(it.filter(|l| !l.is_empty()).map(str::to_string));
    }
    lines.sort();
    lines
}

fn shard_header(path: &Path, host: usize, n_hosts: usize) -> String {
    std::fs::read_to_string(shard_path(path, host, n_hosts))
        .expect("shard written")
        .lines()
        .next()
        .expect("shard header")
        .to_string()
}

#[test]
fn checkpoint_records_and_fingerprints_are_identical_across_topologies() {
    let one = tmp_dir("one").join("grid.ckpt");
    let two = tmp_dir("two").join("grid.ckpt");
    let four = tmp_dir("four").join("grid.ckpt");
    cluster(1, 2, None, Some(&one));
    cluster(2, 4, None, Some(&two));
    cluster(4, 1, None, Some(&four));

    // The grid fingerprint deliberately excludes the topology, so every
    // shard of every shape opens under the same header…
    let reference = shard_header(&one, 0, 1);
    for h in 0..2 {
        assert_eq!(shard_header(&two, h, 2), reference);
    }
    for h in 0..4 {
        assert_eq!(shard_header(&four, h, 4), reference);
    }
    // …and the union of sealed records is byte-identical regardless of
    // how they were sharded.
    let reference = sorted_shard_records(&one, 1);
    assert!(!reference.is_empty());
    assert_eq!(sorted_shard_records(&two, 2), reference);
    assert_eq!(sorted_shard_records(&four, 4), reference);
}

#[test]
fn killed_chaos_cluster_resumes_per_shard_to_the_same_bytes() {
    let plan = violent_chaos();
    let hosts = 4;
    let ckpt = tmp_dir("killed").join("grid.ckpt");
    let full = cluster(hosts, 2, Some(plan), Some(&ckpt));
    let n_cells: usize = {
        let delivered: usize = full.report.hosts.iter().map(|h| h.cells_run).sum();
        delivered
    };
    assert!(n_cells > 2, "need enough cells to chop");

    // Kill the run mid-grid: shard 0 loses its tail *mid-record* (a torn
    // write — the final line is cut in half, no trailing newline), the
    // other shards lose their last sealed record cleanly.
    for h in 0..hosts {
        let shard = shard_path(&ckpt, h, hosts);
        let text = std::fs::read_to_string(&shard).expect("shard written");
        let lines: Vec<&str> = text.lines().collect();
        let damaged = if h == 0 {
            let keep = lines.len().saturating_sub(1).max(1);
            let torn = &lines[keep][..lines[keep].len() / 2];
            format!("{}\n{}", lines[..keep].join("\n"), torn)
        } else {
            let keep = lines.len().saturating_sub(2).max(1);
            format!("{}\n", lines[..keep].join("\n"))
        };
        std::fs::write(&shard, damaged).expect("rewrite damaged shard");
    }

    // The resumed run replays every sealed record, recomputes the torn
    // and chopped cells, and lands on the same grid bytes.
    let resumed = cluster(hosts, 4, Some(plan), Some(&ckpt));
    assert!(
        resumed.grid.resumed_cells > 0,
        "damaged shards must still replay their sealed prefix"
    );
    assert!(
        resumed.grid.resumed_cells < n_cells,
        "the chopped cells must be recomputed, not silently replayed"
    );
    assert_grids_identical("killed chaos resume", &full.grid, &resumed.grid);

    // And a further resume finds every cell sealed again: the repaired
    // journals are complete despite the torn write.
    let replayed = cluster(hosts, 1, Some(plan), Some(&ckpt));
    assert_eq!(replayed.grid.resumed_cells, n_cells);
    assert_grids_identical("fully sealed replay", &full.grid, &replayed.grid);
}
