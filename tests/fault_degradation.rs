//! Graceful degradation end to end: under a 100%-failure [`FaultPlan`]
//! every AutoML system still deploys a servable constant-class fallback,
//! and injected faults only ever *add* energy — the productive (clean)
//! accounting is bitwise unchanged underneath the waste.

use green_automl::prelude::*;

#[test]
fn total_failure_degrades_every_system_to_a_servable_constant_predictor() {
    let data = TaskSpec::new("fault-deg", 240, 6, 3).generate();
    let (train, test) = train_test_split(&data, 0.34, 9);
    // 60 s clears every budget floor; the plan then kills every trial.
    let spec = RunSpec::single_core(60.0, 9).with_fault(FaultPlan::total_failure(9));
    let trace = TrafficConfig {
        rps: 200.0,
        n_requests: 200,
        seed: 3,
    }
    .generate(test.n_rows());

    for system in all_systems() {
        let name = system.name();
        // Search: every candidate dies, yet the run completes with the
        // majority-class fallback and an honest energy bill.
        let run = system.fit(&train, &spec);
        assert!(run.n_trial_faults > 0, "{name}: every trial must die");
        assert!(
            run.wasted_j > 0.0,
            "{name}: killed trials still cost energy"
        );
        assert!(
            matches!(run.predictor, Predictor::Constant { .. }),
            "{name}: expected the constant-class fallback, got {:?} models",
            run.predictor.n_models()
        );
        assert_eq!(run.predictor.n_models(), 0, "{name}");

        // Serving: the degraded deployment still answers the full trace.
        let report = serve(&run.predictor, &test, &trace, &ServeConfig::cpu_testbed(2));
        assert_eq!(report.n_requests, 200, "{name}");
        assert_eq!(report.predictions.len(), 200, "{name}");
        assert_eq!(report.failed_requests, 0, "{name}");
        let class = report.predictions[0];
        assert!(
            report.predictions.iter().all(|&p| p == class),
            "{name}: the fallback must answer with one class"
        );
    }

    // Guideline: the recommendation engine is independent of the wrecked
    // search, so the end-to-end pipeline (search → guideline → serving)
    // keeps producing a usable answer after a total search loss.
    let profile = TaskProfile {
        has_dev_compute: false,
        many_executions: true,
        budget_s: 60.0,
        n_classes: 3,
        gpu_available: false,
        priority: Priority::FastInference,
        serving: None,
    };
    assert_eq!(recommend(&profile), Recommendation::Flaml);
}

#[test]
fn faults_add_wasted_energy_without_touching_productive_accounting() {
    let data = TaskSpec::new("fault-conserve", 300, 6, 3).generate();
    let (train, test) = train_test_split(&data, 0.34, 21);
    let run = Flaml::default().fit(&train, &RunSpec::single_core(10.0, 21));
    let trace = TrafficConfig {
        rps: 400.0,
        n_requests: 600,
        seed: 21,
    }
    .generate(test.n_rows());

    let clean_cfg = ServeConfig::cpu_testbed(3);
    let clean = serve(&run.predictor, &test, &trace, &clean_cfg);
    let chaos = serve(
        &run.predictor,
        &test,
        &trace,
        &clean_cfg.with_fault(FaultPlan::chaos(21)),
    );

    // The faults fired and every request still completed.
    assert!(chaos.retried_requests > 0, "crashes must force retries");
    assert_eq!(chaos.failed_requests, 0, "retries must absorb the crashes");
    assert!(chaos.wasted_j > 0.0, "crashed attempts must be billed");

    // Conservation: completed work is charged identically to the clean
    // run — faults add a separate wasted term, they never perturb it.
    assert_eq!(chaos.predictions, clean.predictions);
    assert_eq!(chaos.busy_j.to_bits(), clean.busy_j.to_bits());

    // The total decomposes exactly, with no hidden rounding.
    let recomposed = chaos.busy_j + chaos.idle_j + chaos.wasted_j;
    assert_eq!(chaos.total_joules().to_bits(), recomposed.to_bits());
    assert!(chaos.total_joules() > clean.total_joules());
}
