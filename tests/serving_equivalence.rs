//! The serving layer's headline guarantee, mirroring the benchmark grid's
//! `parallel_equivalence`: `serve` fans batch inference out over host
//! threads, but every batch owns its tracker, so the [`ServingReport`] —
//! predictions, latencies, batch histogram, Joules — is **bit-identical**
//! at every `host_parallelism` setting.

use green_automl::prelude::*;
use green_automl::serve::ServingReport as Report;

fn deployments() -> (Dataset, Vec<(&'static str, Predictor)>) {
    let data = TaskSpec::new("serve-eq", 300, 6, 3).generate();
    let (train, test) = train_test_split(&data, 0.34, 11);
    let spec = RunSpec::single_core(10.0, 11);
    let preds = vec![
        ("FLAML", Flaml::default().fit(&train, &spec).predictor),
        (
            "AutoGluon",
            AutoGluon::default().fit(&train, &spec).predictor,
        ),
    ];
    (test, preds)
}

fn serve_at(predictor: &Predictor, pool: &Dataset, host_parallelism: usize) -> Report {
    let trace = TrafficConfig {
        rps: 400.0,
        n_requests: 600,
        seed: 77,
    }
    .generate(pool.n_rows());
    let cfg = ServeConfig {
        host_parallelism,
        ..ServeConfig::cpu_testbed(3)
    };
    serve(predictor, pool, &trace, &cfg)
}

/// Compare every report field bit-exactly (floats via `to_bits`, so
/// `-0.0` vs `0.0` or NaN payloads would also be caught).
fn assert_reports_identical(ctx: &str, serial: &Report, parallel: &Report) {
    assert_eq!(serial.n_requests, parallel.n_requests, "{ctx}: n_requests");
    assert_eq!(serial.n_batches, parallel.n_batches, "{ctx}: n_batches");
    assert_eq!(
        serial.predictions, parallel.predictions,
        "{ctx}: predictions"
    );
    assert_eq!(serial.batch_sizes, parallel.batch_sizes, "{ctx}: histogram");
    assert_eq!(
        serial.max_queue_depth, parallel.max_queue_depth,
        "{ctx}: max_queue_depth"
    );
    let bits = [
        (
            "latency.p50_s",
            serial.latency.p50_s,
            parallel.latency.p50_s,
        ),
        (
            "latency.p95_s",
            serial.latency.p95_s,
            parallel.latency.p95_s,
        ),
        (
            "latency.p99_s",
            serial.latency.p99_s,
            parallel.latency.p99_s,
        ),
        (
            "latency.mean_s",
            serial.latency.mean_s,
            parallel.latency.mean_s,
        ),
        (
            "latency.max_s",
            serial.latency.max_s,
            parallel.latency.max_s,
        ),
        (
            "mean_queue_depth",
            serial.mean_queue_depth,
            parallel.mean_queue_depth,
        ),
        ("busy_j", serial.busy_j, parallel.busy_j),
        ("idle_j", serial.idle_j, parallel.idle_j),
        ("makespan_s", serial.makespan_s, parallel.makespan_s),
        (
            "ops.scalar_flops",
            serial.ops.scalar_flops,
            parallel.ops.scalar_flops,
        ),
        (
            "ops.matmul_flops",
            serial.ops.matmul_flops,
            parallel.ops.matmul_flops,
        ),
        (
            "ops.tree_steps",
            serial.ops.tree_steps,
            parallel.ops.tree_steps,
        ),
        (
            "ops.mem_bytes",
            serial.ops.mem_bytes,
            parallel.ops.mem_bytes,
        ),
    ];
    for (name, a, b) in bits {
        assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: {name} ({a} vs {b})");
    }
}

#[test]
fn serving_report_is_bit_identical_at_every_worker_count() {
    let (pool, preds) = deployments();
    for (name, predictor) in &preds {
        let serial = serve_at(predictor, &pool, 1);
        assert!(serial.busy_j > 0.0, "{name}: report must do real work");
        for workers in [2, 8] {
            let parallel = serve_at(predictor, &pool, workers);
            assert_reports_identical(&format!("{name} @ {workers}"), &serial, &parallel);
        }
    }
}

#[test]
fn auto_host_parallelism_matches_serial_too() {
    // `0` = one host thread per available core — the default.
    let (pool, preds) = deployments();
    let (name, predictor) = &preds[1];
    let serial = serve_at(predictor, &pool, 1);
    let auto = serve_at(predictor, &pool, 0);
    assert_reports_identical(&format!("{name} @ auto"), &serial, &auto);
}
