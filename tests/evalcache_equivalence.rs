//! The evaluation cache's headline guarantee: memoisation is **invisible**
//! in every artefact. A cache hit skips the real compute but replays the
//! exact virtual-energy charges the cold evaluation recorded, so the full
//! grid output — points, span traces, checkpoint records — is bitwise
//! identical with the cache on or off, at 1 or N workers, on a clean run
//! and under an active chaos [`FaultPlan`].

use green_automl::core::benchmark::BenchmarkPoint;
use green_automl::prelude::*;
use std::path::PathBuf;

const SEED: u64 = 9;

/// One traced multi-budget grid: two nested budgets so the 60 s cells
/// repeat the 10 s cells' deterministic trial prefixes — the redundancy
/// the cache exists to collapse.
fn grid(workers: usize, eval_cache: bool, fault: Option<FaultPlan>) -> GridRun {
    let systems = all_systems();
    let datasets: Vec<_> = amlb39().into_iter().take(2).collect();
    let budgets = [10.0, 60.0];
    let mut spec = RunSpec::single_core(10.0, SEED).with_trace();
    if let Some(plan) = fault {
        spec = spec.with_fault(plan);
    }
    let opts = BenchmarkOptions {
        materialize: MaterializeOptions::tiny(),
        runs: 1,
        test_frac: 0.34,
        parallelism: workers,
        eval_cache,
    };
    run_grid_checked(&systems, &datasets, &budgets, &spec, &opts, None)
        .expect("the equivalence spec is valid")
}

/// Every float in a point, as raw bit patterns (`-0.0` vs `0.0` or NaN
/// payload differences would be caught).
fn point_bits(p: &BenchmarkPoint) -> [u64; 13] {
    [
        p.budget_s.to_bits(),
        p.balanced_accuracy.to_bits(),
        p.execution.duration_s.to_bits(),
        p.execution.energy.package_j.to_bits(),
        p.execution.energy.dram_j.to_bits(),
        p.execution.energy.gpu_j.to_bits(),
        p.execution.ops.scalar_flops.to_bits(),
        p.execution.ops.matmul_flops.to_bits(),
        p.execution.ops.tree_steps.to_bits(),
        p.execution.ops.mem_bytes.to_bits(),
        p.inference_kwh_per_row.to_bits(),
        p.inference_s_per_row.to_bits(),
        p.wasted_j.to_bits(),
    ]
}

fn assert_grids_identical(ctx: &str, reference: &GridRun, other: &GridRun) {
    assert_eq!(
        reference.points.len(),
        other.points.len(),
        "{ctx}: point count"
    );
    for (i, (a, b)) in reference.points.iter().zip(&other.points).enumerate() {
        assert_eq!(
            point_bits(a),
            point_bits(b),
            "{ctx}[{i}]: float bits ({} on {})",
            a.system,
            a.dataset
        );
        // Serialized traces compare the full span tree — ids, nesting,
        // labels, and per-span energy — byte for byte.
        let (ta, tb) = (a.trace.as_ref(), b.trace.as_ref());
        assert_eq!(
            ta.map(Trace::to_jsonl),
            tb.map(Trace::to_jsonl),
            "{ctx}[{i}]: trace ({} on {})",
            a.system,
            a.dataset
        );
    }
    // Structural equality last: covers every remaining field (system,
    // dataset, seed, n_models, n_evaluations, fault counters).
    assert_eq!(reference.points, other.points, "{ctx}: full points");
    assert_eq!(reference.failures, other.failures, "{ctx}: failures");
}

#[test]
fn clean_grid_is_bit_identical_with_cache_on_or_off_at_every_worker_count() {
    let reference = grid(1, false, None);
    assert!(!reference.points.is_empty());
    assert_eq!(
        reference.eval_cache_hits + reference.eval_cache_misses,
        0,
        "a disabled cache must observe nothing"
    );

    let cached_serial = grid(1, true, None);
    assert!(
        cached_serial.eval_cache_hits > 0,
        "the nested-budget grid must actually hit the cache"
    );
    assert_grids_identical("cache on @ 1 worker", &reference, &cached_serial);

    for workers in [4, 8] {
        assert_grids_identical(
            &format!("cache off @ {workers} workers"),
            &reference,
            &grid(workers, false, None),
        );
        assert_grids_identical(
            &format!("cache on @ {workers} workers"),
            &reference,
            &grid(workers, true, None),
        );
    }
}

#[test]
fn faulted_grid_is_bit_identical_with_cache_on_or_off_at_every_worker_count() {
    let reference = grid(1, false, Some(FaultPlan::chaos(SEED)));
    let faults: usize = reference.points.iter().map(|p| p.n_trial_faults).sum();
    assert!(faults > 0, "the chaos plan must actually kill trials");

    let cached_serial = grid(1, true, Some(FaultPlan::chaos(SEED)));
    assert!(
        cached_serial.eval_cache_hits > 0,
        "surviving trials must still hit the cache under chaos"
    );
    assert_grids_identical("chaos, cache on @ 1 worker", &reference, &cached_serial);

    for workers in [4, 8] {
        assert_grids_identical(
            &format!("chaos, cache on @ {workers} workers"),
            &reference,
            &grid(workers, true, Some(FaultPlan::chaos(SEED))),
        );
    }
}

// ---------------------------------------------------------- checkpoint ----

fn tmp_ckpt(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("green-automl-evalcache-eq");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

/// Checkpoint records are flushed in completion order, which is
/// scheduling-dependent — but each *record* must be byte-identical, so the
/// sorted line sets agree.
fn sorted_ckpt_lines(path: &PathBuf) -> Vec<String> {
    let mut lines: Vec<String> = std::fs::read_to_string(path)
        .expect("checkpoint written")
        .lines()
        .map(str::to_string)
        .collect();
    lines.sort();
    lines
}

#[test]
fn checkpoint_records_are_identical_with_cache_on_or_off() {
    let systems = all_systems();
    let datasets: Vec<_> = amlb39().into_iter().take(1).collect();
    let budgets = [10.0, 60.0];
    let spec = RunSpec::single_core(10.0, SEED);
    let run = |workers: usize, eval_cache: bool, path: &PathBuf| {
        let opts = BenchmarkOptions {
            materialize: MaterializeOptions::tiny(),
            runs: 1,
            test_frac: 0.34,
            parallelism: workers,
            eval_cache,
        };
        run_grid_checked(&systems, &datasets, &budgets, &spec, &opts, Some(path))
            .expect("valid spec");
    };

    let cold = tmp_ckpt("cold.ckpt");
    run(1, false, &cold);
    let cached = tmp_ckpt("cached.ckpt");
    run(4, true, &cached);

    // Same grid fingerprint header, same sealed cell records — the cache
    // (and the schedule) leave no trace in the persisted artefact.
    assert_eq!(sorted_ckpt_lines(&cold), sorted_ckpt_lines(&cached));
}
