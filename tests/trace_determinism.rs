//! The tracing headline, mirroring `fault_equivalence`: the serialized
//! span trace of a benchmark grid is **byte-identical** at every worker
//! count — with and without an active chaos [`FaultPlan`] — and every
//! span's energy reconciles bitwise with the run-level [`Measurement`]
//! the tables are built from. Tracing observes the virtual timeline; it
//! never perturbs it.

use green_automl::core::BenchmarkPoint;
use green_automl::prelude::*;

const SEED: u64 = 11;

fn traced_grid(workers: usize, fault: Option<FaultPlan>) -> Vec<BenchmarkPoint> {
    let systems = all_systems();
    let datasets: Vec<_> = amlb39().into_iter().take(2).collect();
    // 60 s clears every budget floor, so all seven systems participate.
    let budgets = [10.0, 60.0];
    let mut spec = RunSpec::single_core(10.0, SEED).with_trace();
    if let Some(plan) = fault {
        spec = spec.with_fault(plan);
    }
    let opts = BenchmarkOptions {
        materialize: MaterializeOptions::tiny(),
        runs: 1,
        test_frac: 0.34,
        parallelism: workers,
        eval_cache: true,
    };
    run_grid_checked(&systems, &datasets, &budgets, &spec, &opts, None)
        .expect("the traced spec is valid")
        .points
}

/// Both sinks over the grid's merged trace, in grid order.
fn sinks(points: &[BenchmarkPoint]) -> (String, String) {
    let merged = Trace::merge(points.iter().filter_map(|p| p.trace.clone()));
    assert!(!merged.spans.is_empty(), "traced grid must produce spans");
    (merged.to_jsonl(), merged.to_chrome_trace())
}

#[test]
fn clean_grid_trace_is_byte_identical_at_every_worker_count() {
    let reference = sinks(&traced_grid(1, None));
    for workers in [4, 8] {
        assert_eq!(
            sinks(&traced_grid(workers, None)),
            reference,
            "trace diverged at {workers} workers"
        );
    }
}

#[test]
fn faulted_grid_trace_is_byte_identical_at_every_worker_count() {
    let plan = FaultPlan::chaos(SEED);
    let reference = sinks(&traced_grid(1, Some(plan)));
    for workers in [4, 8] {
        assert_eq!(
            sinks(&traced_grid(workers, Some(plan))),
            reference,
            "faulted trace diverged at {workers} workers"
        );
    }
    // The chaos plan actually bites: some spans carry a fault tag.
    let points = traced_grid(1, Some(plan));
    let tagged = points
        .iter()
        .filter_map(|p| p.trace.as_ref())
        .flat_map(|t| t.spans.iter())
        .filter(|s| s.fault.is_some())
        .count();
    assert!(tagged > 0, "chaos plan must tag some spans");
}

#[test]
fn execution_root_spans_reconcile_bitwise_with_the_measurement() {
    for points in [
        traced_grid(4, None),
        traced_grid(4, Some(FaultPlan::chaos(SEED))),
    ] {
        for p in &points {
            let t = p.trace.as_ref().expect("tracing was on");
            // Execution spans render on track 0, inference on track 1.
            let root = t
                .roots()
                .find(|r| r.track == 0)
                .expect("execution trace has a root span");
            assert_eq!(
                root.energy.package_j.to_bits(),
                p.execution.energy.package_j.to_bits(),
                "{} on {}: package energy must reconcile bitwise",
                p.system,
                p.dataset
            );
            assert_eq!(
                root.energy.dram_j.to_bits(),
                p.execution.energy.dram_j.to_bits()
            );
            assert_eq!(
                root.energy.gpu_j.to_bits(),
                p.execution.energy.gpu_j.to_bits()
            );
            assert_eq!(
                root.ops.scalar_flops.to_bits(),
                p.execution.ops.scalar_flops.to_bits()
            );
        }
    }
}

#[test]
fn tracing_never_perturbs_the_measured_numbers() {
    // The same grid, traced vs untraced: every measured float is bitwise
    // unchanged — the tracer is an observer, not a participant.
    let systems = all_systems();
    let datasets: Vec<_> = amlb39().into_iter().take(2).collect();
    let budgets = [10.0];
    let opts = BenchmarkOptions {
        materialize: MaterializeOptions::tiny(),
        runs: 1,
        test_frac: 0.34,
        parallelism: 0,
        eval_cache: true,
    };
    let spec = RunSpec::single_core(10.0, SEED);
    let plain = run_grid_checked(&systems, &datasets, &budgets, &spec, &opts, None)
        .expect("valid spec")
        .points;
    let traced = run_grid_checked(
        &systems,
        &datasets,
        &budgets,
        &spec.with_trace(),
        &opts,
        None,
    )
    .expect("valid spec")
    .points;
    assert_eq!(plain.len(), traced.len());
    for (a, b) in plain.iter().zip(&traced) {
        assert_eq!(a.system, b.system);
        assert_eq!(a.balanced_accuracy.to_bits(), b.balanced_accuracy.to_bits());
        assert_eq!(
            a.execution.energy.total_joules().to_bits(),
            b.execution.energy.total_joules().to_bits()
        );
        assert_eq!(
            a.inference_kwh_per_row.to_bits(),
            b.inference_kwh_per_row.to_bits()
        );
        assert!(a.trace.is_none() && b.trace.is_some());
    }
}
