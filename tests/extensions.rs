//! Integration tests for the paper-motivated extensions: the random/grid
//! search baselines (§1's amortisation yardstick), CAML early stopping
//! (§3.8), the energy-aware search objective (§1 / [47]), and AutoGluon
//! distillation (§5 / Fakoor et al. 2020).

use green_automl::prelude::*;
use green_automl::systems::{GridSearchBaseline, RandomSearchBaseline};

fn task(seed: u64) -> (Dataset, Dataset) {
    let mut s = TaskSpec::new("ext", 280, 6, 2);
    s.cluster_sep = 2.0;
    s.label_noise = 0.05;
    let ds = s.generate().with_scales(8.0, 1.0);
    train_test_split(&ds, 0.34, seed)
}

#[test]
fn early_stopping_saves_energy_without_collapsing_accuracy() {
    // Paper §3.8: "especially for smaller datasets, early stopping should
    // be enforced to save energy".
    let (train, test) = task(0);
    let spec = RunSpec::single_core(120.0, 0);
    let dev = Device::xeon_gold_6132();

    let full = Caml::default().fit(&train, &spec);
    let early = Caml {
        params: CamlParams {
            early_stop_patience: Some(6),
            ..Default::default()
        },
        tuned: false,
    }
    .fit(&train, &spec);

    assert!(
        early.execution.kwh() < full.execution.kwh() * 0.8,
        "early stopping should save >20% execution energy: {:.3e} vs {:.3e}",
        early.execution.kwh(),
        full.execution.kwh()
    );
    let mut t = CostTracker::new(dev, 1);
    let acc_full = balanced_accuracy(&test.labels, &full.predictor.predict(&test, &mut t), 2);
    let acc_early = balanced_accuracy(&test.labels, &early.predictor.predict(&test, &mut t), 2);
    assert!(
        acc_early > acc_full - 0.12,
        "early-stopped accuracy {acc_early:.3} too far below full {acc_full:.3}"
    );
}

#[test]
fn energy_aware_objective_prefers_cheaper_pipelines() {
    // Paper §1: CO2/energy can be "a constraint during search ... in the
    // objective function". A strongly energy-weighted CAML must deploy a
    // pipeline that is no more expensive at inference than the
    // accuracy-only one.
    let (train, _) = task(1);
    let spec = RunSpec::single_core(60.0, 1);
    let dev = Device::xeon_gold_6132();

    let plain = Caml::default().fit(&train, &spec);
    let green = Caml {
        params: CamlParams {
            energy_weight: 0.5,
            ..Default::default()
        },
        tuned: false,
    }
    .fit(&train, &spec);

    let e_plain = plain.predictor.inference_kwh_per_row(dev, 1);
    let e_green = green.predictor.inference_kwh_per_row(dev, 1);
    assert!(
        e_green <= e_plain * 1.05,
        "energy-aware search must not deploy costlier inference: {e_green:.3e} vs {e_plain:.3e}"
    );
}

#[test]
fn baselines_complete_the_amortization_triangle() {
    // Guided search (CAML) vs random vs grid under one budget: all three
    // deploy single models; the baselines exist so development-stage
    // amortisation can be argued against them (paper §1).
    let (train, test) = task(2);
    let spec = RunSpec::single_core(30.0, 2);
    let dev = Device::xeon_gold_6132();
    let mut t = CostTracker::new(dev, 1);

    for (name, run) in [
        ("CAML", Caml::default().fit(&train, &spec)),
        (
            "RandomSearch",
            RandomSearchBaseline::default().fit(&train, &spec),
        ),
        (
            "GridSearch",
            GridSearchBaseline::default().fit(&train, &spec),
        ),
    ] {
        assert_eq!(run.predictor.n_models(), 1, "{name}");
        assert!(run.execution.kwh() > 0.0, "{name}");
        let acc = balanced_accuracy(&test.labels, &run.predictor.predict(&test, &mut t), 2);
        assert!(acc > 0.6, "{name}: accuracy {acc:.3}");
    }
}

#[test]
fn distillation_is_the_cheapest_autogluon_deployment() {
    let (train, _) = task(3);
    let spec = RunSpec::single_core(60.0, 3);
    let dev = Device::xeon_gold_6132();

    let best = AutoGluon::default().fit(&train, &spec);
    let refit = AutoGluon {
        quality: AutoGluonQuality::FasterInferenceRefit,
    }
    .fit(&train, &spec);
    let distill = AutoGluon {
        quality: AutoGluonQuality::Distill,
    }
    .fit(&train, &spec);

    let e = |run: &green_automl::systems::AutoMlRun| run.predictor.inference_kwh_per_row(dev, 1);
    assert!(
        e(&distill) < e(&refit) && e(&refit) < e(&best),
        "expected distill < refit < best: {:.3e} / {:.3e} / {:.3e}",
        e(&distill),
        e(&refit),
        e(&best)
    );
}
