//! Cross-crate integration tests: dataset registry → AutoML systems →
//! energy accounting → holistic reports, exercised through the public
//! facade only.

use green_automl::prelude::*;

fn bench_dataset(name: &str) -> Dataset {
    amlb39()
        .into_iter()
        .find(|m| m.name == name)
        .unwrap_or_else(|| panic!("dataset {name} in registry"))
        .materialize(&MaterializeOptions::tiny())
}

#[test]
fn every_system_runs_end_to_end_on_a_registry_dataset() {
    let data = bench_dataset("blood-transfusion-service-center");
    let (train, test) = train_test_split(&data, 0.34, 0);
    for system in all_systems() {
        let budget = system.min_budget_s().max(10.0);
        let run = system.fit(&train, &RunSpec::single_core(budget, 0));
        assert!(
            run.execution.kwh() > 0.0,
            "{}: execution must consume energy",
            system.name()
        );
        let mut meter = CostTracker::new(Device::xeon_gold_6132(), 1);
        let pred = run.predictor.predict(&test, &mut meter);
        assert_eq!(pred.len(), test.n_rows(), "{}", system.name());
        assert!(pred.iter().all(|&p| (p as usize) < test.n_classes));
        let acc = balanced_accuracy(&test.labels, &pred, test.n_classes);
        assert!(
            acc > 0.4,
            "{}: balanced accuracy {acc} at or below chance",
            system.name()
        );
        assert!(meter.measurement().kwh() > 0.0);
    }
}

#[test]
fn execution_energy_grows_with_the_budget_for_strict_systems() {
    let data = bench_dataset("phoneme");
    let (train, _) = train_test_split(&data, 0.34, 1);
    let short = Caml::default().fit(&train, &RunSpec::single_core(10.0, 1));
    let long = Caml::default().fit(&train, &RunSpec::single_core(60.0, 1));
    assert!(
        long.execution.kwh() > short.execution.kwh() * 3.0,
        "6x budget should cost ~6x energy: {:.3e} vs {:.3e}",
        long.execution.kwh(),
        short.execution.kwh()
    );
}

#[test]
fn the_three_headline_observations_hold_on_a_small_sample() {
    // O1: ensembling systems need >= an order of magnitude more inference
    // energy than single-model systems. O2's first half: TabPFN is the most
    // execution-frugal. (Full-scale versions live in the repro binary.)
    let data = bench_dataset("kc1");
    let (train, test) = train_test_split(&data, 0.34, 2);
    let dev = Device::xeon_gold_6132();

    let spec = RunSpec::single_core(30.0, 2);
    let flaml = Flaml::default().fit(&train, &spec);
    let autogluon = AutoGluon::default().fit(&train, &spec);
    let tabpfn = TabPfn::default().fit(&train, &spec);

    let kwh_per_row = |run: &green_automl::systems::AutoMlRun| {
        let mut m = CostTracker::new(dev, 1);
        let _ = run.predictor.predict(&test, &mut m);
        m.measurement().kwh() / test.nominal_rows()
    };

    let o1 = kwh_per_row(&autogluon) / kwh_per_row(&flaml);
    assert!(
        o1 > 10.0,
        "O1: AutoGluon/FLAML inference ratio {o1:.1} < 10"
    );

    assert!(
        tabpfn.execution.kwh() < flaml.execution.kwh() / 10.0,
        "O2: TabPFN execution {:.3e} should be <10% of FLAML's {:.3e}",
        tabpfn.execution.kwh(),
        flaml.execution.kwh()
    );
    let pfn_ratio = kwh_per_row(&tabpfn) / kwh_per_row(&flaml);
    assert!(
        pfn_ratio > 10.0,
        "TabPFN inference should dwarf FLAML's ({pfn_ratio:.1}x)"
    );
}

#[test]
fn holistic_report_combines_stages() {
    let data = bench_dataset("vehicle");
    let (train, test) = train_test_split(&data, 0.34, 3);
    let run = Flaml::default().fit(&train, &RunSpec::single_core(10.0, 3));
    let mut meter = CostTracker::new(Device::xeon_gold_6132(), 1);
    let pred = run.predictor.predict(&test, &mut meter);
    let report = HolisticReport {
        development_kwh: 0.0,
        execution_kwh: run.execution.kwh(),
        inference_kwh_per_prediction: meter.measurement().kwh() / test.nominal_rows(),
        balanced_accuracy: balanced_accuracy(&test.labels, &pred, test.n_classes),
    };
    assert!(report.total_kwh(0.0) > 0.0);
    assert!(report.total_kwh(1e6) > report.total_kwh(0.0));
    assert!(report.balanced_accuracy > 0.3);
}

#[test]
fn guideline_recommendation_is_consistent_with_measurements() {
    // The guideline says FLAML for fast inference; verify FLAML really has
    // the cheapest inference among the searchers on a sample dataset.
    let data = bench_dataset("sylvine");
    let (train, _) = train_test_split(&data, 0.34, 4);
    let dev = Device::xeon_gold_6132();
    let spec = RunSpec::single_core(30.0, 4);

    let profile = TaskProfile {
        has_dev_compute: false,
        many_executions: false,
        budget_s: 30.0,
        n_classes: 2,
        gpu_available: false,
        priority: Priority::FastInference,
        serving: None,
    };
    assert_eq!(recommend(&profile), Recommendation::Flaml);

    let flaml = Flaml::default().fit(&train, &spec);
    let autogluon = AutoGluon::default().fit(&train, &spec);
    assert!(
        flaml.predictor.inference_kwh_per_row(dev, 1)
            < autogluon.predictor.inference_kwh_per_row(dev, 1)
    );
}

#[test]
fn csv_round_trip_feeds_the_automl_stack() {
    // A user's own CSV data can flow through the whole pipeline.
    let raw = "\
age,income,city,label
34,51000,berlin,0
28,32000,hannover,1
45,87000,berlin,0
39,,hannover,1
51,62000,munich,0
23,28000,berlin,1
44,71000,munich,0
31,30500,hannover,1
62,90100,berlin,0
27,31000,munich,1
48,66000,berlin,0
25,29000,hannover,1
";
    let ds = green_automl::dataset::csv::from_csv("people", raw).expect("parses");
    assert_eq!(ds.n_rows(), 12);
    let run = Flaml::default().fit(&ds, &RunSpec::single_core(10.0, 5));
    let mut meter = CostTracker::new(Device::xeon_gold_6132(), 1);
    let pred = run.predictor.predict(&ds, &mut meter);
    assert_eq!(pred.len(), 12);
}
