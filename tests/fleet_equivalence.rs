//! The fleet layer's headline guarantee: [`run_fleet`] fans batch
//! inference out over host threads, but batch formation is pure, every
//! batch owns its tracker, and dispatch (routing, autoscaling, fault
//! injection, every float accumulation) is strictly serial — so the
//! [`FleetReport`] is **byte-identical** at every `host_parallelism`
//! setting, clean or chaos-faulted. Asserted three ways: structural
//! equality (`PartialEq` covers every field, energies included), the
//! canonical `to_text` serialisation, and the span trace's JSONL sink.

use green_automl::prelude::*;

fn fixture() -> (Dataset, Vec<TenantSpec>, FleetTrace) {
    let data = TaskSpec::new("fleet-eq", 300, 6, 3).generate();
    let (train, test) = train_test_split(&data, 0.34, 19);
    let spec = RunSpec::single_core(10.0, 19);
    let tenants = vec![
        TenantSpec::new("flaml", Flaml::default().fit(&train, &spec).predictor, 0.5),
        TenantSpec::new(
            "autogluon",
            AutoGluon::default().fit(&train, &spec).predictor,
            0.5,
        ),
    ];
    let trace = FleetTrafficConfig {
        tenants: vec![
            TenantTraffic {
                tenant: 0,
                rps: 400.0,
                shapes: vec![Shape::Diurnal {
                    period_s: 0.75,
                    amplitude: 0.4,
                    peak_s: 0.2,
                }],
                n_requests: 300,
                seed: 91,
            },
            TenantTraffic {
                tenant: 1,
                rps: 400.0,
                shapes: vec![Shape::FlashCrowd {
                    at_s: 0.4,
                    ramp_s: 0.05,
                    peak_factor: 5.0,
                    decay_s: 0.08,
                }],
                n_requests: 300,
                seed: 92,
            },
        ],
    }
    .generate(test.n_rows());
    (test, tenants, trace)
}

fn config(host_parallelism: usize, fault: FaultPlan) -> FleetConfig {
    let regions = vec![
        RegionSpec::new(
            "germany",
            CarbonProfile::seeded(GridIntensity::GERMANY, 1),
            1,
        ),
        RegionSpec::new("poland", CarbonProfile::seeded(GridIntensity::POLAND, 2), 1),
        RegionSpec::new("sweden", CarbonProfile::seeded(GridIntensity::SWEDEN, 3), 1),
    ];
    let mut cfg = FleetConfig::cpu_testbed(regions)
        .with_autoscale(AutoscalePolicy::elastic(1, 4))
        .with_fault(fault)
        .with_trace();
    cfg.host_parallelism = host_parallelism;
    cfg
}

fn assert_identical(ctx: &str, serial: &FleetReport, parallel: &FleetReport) {
    // Structural equality covers every field bit-for-bit through the
    // derived PartialEq (floats compare by value; to_text below catches
    // -0.0 vs 0.0 or NaN-payload drift through the {:?} rendering).
    assert_eq!(serial, parallel, "{ctx}: FleetReport fields");
    assert_eq!(serial.to_text(), parallel.to_text(), "{ctx}: to_text");
    let (a, b) = (
        serial.trace.as_ref().expect("trace on"),
        parallel.trace.as_ref().expect("trace on"),
    );
    assert_eq!(a.to_jsonl(), b.to_jsonl(), "{ctx}: trace jsonl");
}

#[test]
fn fleet_report_is_byte_identical_at_every_worker_count_clean() {
    let (pool, tenants, trace) = fixture();
    let serial = run_fleet(&tenants, &pool, &trace, &config(1, FaultPlan::disabled()));
    assert!(serial.n_batches > 0, "fixture must do real work");
    assert!(
        !serial.events.is_empty(),
        "fixture must exercise the autoscaler"
    );
    for workers in [2, 4, 8] {
        let parallel = run_fleet(
            &tenants,
            &pool,
            &trace,
            &config(workers, FaultPlan::disabled()),
        );
        assert_identical(&format!("clean @ {workers}"), &serial, &parallel);
    }
}

#[test]
fn fleet_report_is_byte_identical_at_every_worker_count_under_chaos() {
    let (pool, tenants, trace) = fixture();
    let plan = FaultPlan::chaos(5);
    let serial = run_fleet(&tenants, &pool, &trace, &config(1, plan));
    assert!(
        serial.tenants.iter().any(|t| t.retried_requests > 0),
        "chaos plan must actually crash a replica"
    );
    for workers in [2, 4, 8] {
        let parallel = run_fleet(&tenants, &pool, &trace, &config(workers, plan));
        assert_identical(&format!("chaos @ {workers}"), &serial, &parallel);
    }
}

#[test]
fn auto_host_parallelism_matches_serial_too() {
    // `0` = one host thread per available core — the default.
    let (pool, tenants, trace) = fixture();
    let serial = run_fleet(&tenants, &pool, &trace, &config(1, FaultPlan::disabled()));
    let auto = run_fleet(&tenants, &pool, &trace, &config(0, FaultPlan::disabled()));
    assert_identical("clean @ auto", &serial, &auto);
}
