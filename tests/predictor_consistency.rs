//! Consistency properties of the per-row inference cost model, across
//! devices and core counts:
//!
//! * `inference_kwh_per_row` / `inference_s_per_row` are positive for every
//!   deployable predictor;
//! * both are monotone in `inference_ops_per_row` — a predictor whose
//!   per-row operation vector dominates another's can never be reported as
//!   cheaper or faster;
//! * the batched prediction path never charges more energy per row than
//!   row-at-a-time serving of the same rows (batch amortisation only
//!   removes framework dispatch, it never adds work).

use green_automl::prelude::*;

fn fitted_predictors() -> (Dataset, Vec<(&'static str, Predictor)>) {
    let data = TaskSpec::new("consistency", 240, 8, 2).generate();
    let (train, test) = train_test_split(&data, 0.34, 3);
    let spec = RunSpec::single_core(10.0, 3);
    let preds = vec![
        ("FLAML", Flaml::default().fit(&train, &spec).predictor),
        ("CAML", Caml::default().fit(&train, &spec).predictor),
        ("TabPFN", TabPfn::default().fit(&train, &spec).predictor),
        (
            "AutoGluon",
            AutoGluon::default().fit(&train, &spec).predictor,
        ),
        (
            "Constant",
            Predictor::Constant {
                class: 0,
                n_classes: 2,
            },
        ),
    ];
    (test, preds)
}

fn settings() -> Vec<(Device, usize)> {
    vec![
        (Device::xeon_gold_6132(), 1),
        (Device::xeon_gold_6132(), 4),
        (Device::xeon_gold_6132(), 28),
        (Device::gpu_node(), 1),
        (Device::gpu_node(), 8),
    ]
}

/// `a` does no more of any operation kind than `b` (componentwise `<=`).
fn dominated_by(a: &OpCounts, b: &OpCounts) -> bool {
    a.scalar_flops <= b.scalar_flops
        && a.matmul_flops <= b.matmul_flops
        && a.tree_steps <= b.tree_steps
        && a.mem_bytes <= b.mem_bytes
}

#[test]
fn per_row_costs_are_positive_on_every_device() {
    let (_, preds) = fitted_predictors();
    for (device, cores) in settings() {
        for (name, p) in &preds {
            let kwh = p.inference_kwh_per_row(device, cores);
            let secs = p.inference_s_per_row(device, cores);
            assert!(
                kwh > 0.0 && kwh.is_finite(),
                "{name} on {cores} core(s): kwh {kwh}"
            );
            assert!(
                secs > 0.0 && secs.is_finite(),
                "{name} on {cores} core(s): secs {secs}"
            );
        }
    }
}

#[test]
fn per_row_costs_are_monotone_in_the_op_vector() {
    let (_, preds) = fitted_predictors();
    let mut compared = 0usize;
    for (device, cores) in settings() {
        for (a_name, a) in &preds {
            for (b_name, b) in &preds {
                if !dominated_by(&a.inference_ops_per_row(), &b.inference_ops_per_row()) {
                    continue;
                }
                compared += 1;
                let ctx = format!("{a_name} <= {b_name} on {cores} core(s)");
                assert!(
                    a.inference_kwh_per_row(device, cores)
                        <= b.inference_kwh_per_row(device, cores),
                    "{ctx}: kwh not monotone"
                );
                assert!(
                    a.inference_s_per_row(device, cores) <= b.inference_s_per_row(device, cores),
                    "{ctx}: seconds not monotone"
                );
            }
        }
    }
    // The pool must actually contain ordered pairs beyond x <= x.
    assert!(
        compared > settings().len() * preds.len(),
        "no non-trivial dominance pairs exercised"
    );
}

#[test]
fn batched_serving_never_costs_more_per_row_than_row_at_a_time() {
    let (test, preds) = fitted_predictors();
    for (device, cores) in settings() {
        for (name, p) in &preds {
            let mut row_meter = CostTracker::new(device, cores);
            let row_preds = p.predict(&test, &mut row_meter);
            let mut batch_meter = CostTracker::new(device, cores);
            let batch_preds = p.predict_batch(&test, &mut batch_meter);
            assert_eq!(row_preds, batch_preds, "{name}: batching changed answers");
            let row_j = row_meter.measurement().energy.total_joules();
            let batch_j = batch_meter.measurement().energy.total_joules();
            assert!(
                batch_j <= row_j * (1.0 + 1e-12),
                "{name} on {cores} core(s): batch {batch_j} J > row-at-a-time {row_j} J"
            );
        }
    }
}
