//! Fraud detection: an inference-dominated workload.
//!
//! The paper's motivating example (§1): "running a fraud detection model on
//! millions of bank transactions might require a focus on inference energy
//! consumption". This example scores millions of transactions per day, so
//! we (a) follow the Fig. 8 guideline, (b) constrain CAML's inference time
//! (Fig. 6), and (c) compare yearly energy bills.
//!
//! ```sh
//! cargo run --release --example fraud_detection
//! ```

use green_automl::prelude::*;

fn main() {
    // An imbalanced binary task standing in for card-transaction data.
    let mut spec = TaskSpec::new("transactions", 2000, 12, 2);
    spec.imbalance = 0.85; // fraud is rare
    spec.categorical_frac = 0.4; // merchant codes, country, channel ...
    let data = spec.generate().with_scales(500.0, 1.0); // nominal: 1M rows
    let (train, test) = train_test_split(&data, 0.34, 7);

    // 1. What does the guideline say?
    let profile = TaskProfile {
        has_dev_compute: false,
        many_executions: false,
        budget_s: 300.0,
        n_classes: 2,
        gpu_available: false,
        priority: Priority::FastInference, // millions of predictions/day
        serving: None,
    };
    println!("Fig. 8 guideline recommends: {:?}\n", recommend(&profile));

    // 2. Candidate deployments: FLAML, unconstrained CAML, constrained CAML.
    let dev = Device::xeon_gold_6132();
    let base = RunSpec::single_core(300.0, 7);
    // The paper swept 1-3 ms/instance on its Python testbed; our simulated
    // pipelines answer in the 10-300 microsecond band, so the binding limit
    // sits correspondingly lower.
    let constrained = RunSpec {
        constraints: Constraints {
            max_inference_s_per_row: Some(2.0e-5),
        },
        ..base
    };
    let candidates: Vec<(&str, green_automl::systems::AutoMlRun)> = vec![
        ("FLAML", Flaml::default().fit(&train, &base)),
        ("CAML (unconstrained)", Caml::default().fit(&train, &base)),
        (
            "CAML (<= 20us/pred)",
            Caml::default().fit(&train, &constrained),
        ),
        (
            "AutoGluon (accuracy ref)",
            AutoGluon::default().fit(&train, &base),
        ),
    ];

    // 3. Accuracy + yearly bill at 5M predictions/day.
    const PREDICTIONS_PER_YEAR: f64 = 5e6 * 365.0;
    println!(
        "{:<26} {:>8} {:>14} {:>12} {:>12}",
        "deployment", "bal.acc", "kWh/pred", "kWh/year", "EUR/year"
    );
    for (label, run) in &candidates {
        let mut meter = CostTracker::new(dev, 1);
        let pred = run.predictor.predict(&test, &mut meter);
        let acc = balanced_accuracy(&test.labels, &pred, 2);
        let kwh_per_pred = meter.measurement().kwh() / test.nominal_rows();
        let yearly = kwh_per_pred * PREDICTIONS_PER_YEAR + run.execution.kwh();
        let bill = EmissionsEstimate::from_kwh(yearly, GridIntensity::GERMANY);
        println!(
            "{label:<26} {acc:>8.3} {kwh_per_pred:>14.3e} {yearly:>12.2} {:>12.2}",
            bill.cost_eur
        );
    }
    println!("\nAt this prediction volume the execution energy is noise; the");
    println!("inference-time constraint buys a lower bill for a small accuracy");
    println!("cost (paper Fig. 6 / Observation O3).");
}
