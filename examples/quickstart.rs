//! Quickstart: run every AutoML system on one tabular task and compare
//! accuracy against execution *and* inference energy — the paper's core
//! measurement, in ~40 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use green_automl::prelude::*;

fn main() {
    // A synthetic stand-in for the paper's "adult" dataset (48 842 rows,
    // 14 features, 2 classes) — materialised small, charged at full scale.
    let meta = amlb39()
        .into_iter()
        .find(|m| m.name == "adult")
        .expect("registry");
    let data = meta.materialize(&MaterializeOptions::benchmark());
    let (train, test) = train_test_split(&data, 0.34, 0);
    println!(
        "dataset: {} ({} nominal rows; materialised {} rows, charge scale {:.0}x)\n",
        data.name,
        meta.instances,
        train.n_rows() + test.n_rows(),
        data.scale()
    );

    let budget_s = 60.0;
    println!(
        "{:<14} {:>9} {:>14} {:>18} {:>9}",
        "system", "bal.acc", "exec kWh", "infer kWh/pred", "models"
    );
    for system in all_systems() {
        if budget_s < system.min_budget_s() {
            continue;
        }
        let run = system.fit(&train, &RunSpec::single_core(budget_s, 0));
        let mut meter = CostTracker::new(Device::xeon_gold_6132(), 1);
        let pred = run.predictor.predict(&test, &mut meter);
        let acc = balanced_accuracy(&test.labels, &pred, test.n_classes);
        let inf_kwh = meter.measurement().kwh() / test.nominal_rows();
        println!(
            "{:<14} {:>9.3} {:>14.6} {:>18.3e} {:>9}",
            system.name(),
            acc,
            run.execution.kwh(),
            inf_kwh,
            run.predictor.n_models()
        );
    }

    println!("\nNote how the ensembling systems (AutoGluon, AutoSklearn) pay at");
    println!("inference, TabPFN pays *only* at inference, and the single-model");
    println!("searchers (FLAML, CAML) are cheap to deploy — the paper's Fig. 3.");
}
