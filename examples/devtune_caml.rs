//! Development-stage tuning (paper §2.5 / §3.7): invest energy *once* in
//! tuning CAML's own AutoML parameters, then harvest cheaper, better runs —
//! and compute when the investment amortises.
//!
//! ```sh
//! cargo run --release --example devtune_caml
//! ```

use green_automl::core::amortize::runs_to_amortize;
use green_automl::core::benchmark::run_once;
use green_automl::prelude::*;

fn main() {
    let budget_s = 10.0;
    let pool = dev_binary_pool();
    println!(
        "Tuning CAML's AutoML parameters for a {budget_s:.0}s search budget\n\
         on representative datasets from a pool of {} binary tasks...\n",
        pool.len()
    );

    let opts = DevTuneOptions {
        budget_s,
        top_k: 8,
        bo_iters: 12,
        runs_per_eval: 2,
        materialize: MaterializeOptions::benchmark(),
        seed: 0,
    };
    let outcome = DevTuner::tune(&pool, &opts);

    println!(
        "representative datasets: {}",
        outcome.representatives.join(", ")
    );
    println!(
        "trials: {} ({} median-pruned), development cost: {:.4} kWh over {:.1} virtual hours",
        outcome.n_trials,
        outcome.n_pruned,
        outcome.development.kwh(),
        outcome.development.duration_s / 3600.0
    );
    let p = &outcome.params;
    println!("\ntuned AutoML-system parameters (paper Table 5):");
    println!(
        "  families: {}",
        p.families
            .iter()
            .map(|f| f.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "  space: depth<={} trees<={} rounds<={} epochs<={}",
        p.bounds.depth.1, p.bounds.n_trees.1, p.bounds.gb_rounds.1, p.bounds.epochs.1
    );
    println!(
        "  holdout={:.2} eval_fraction={:.2} sampling={:.2} refit={} resample_val={} incremental={}",
        p.holdout_frac, p.eval_fraction, p.sampling_frac, p.refit, p.resample_validation,
        p.incremental_training
    );

    // Compare default vs tuned CAML on unseen benchmark datasets.
    let bench = BenchmarkOptions::default();
    let tuned = Caml::tuned(outcome.params.clone());
    let default = Caml::default();
    let mut acc = [0.0f64; 2];
    let mut kwh = [0.0f64; 2];
    let datasets: Vec<_> = amlb39()
        .into_iter()
        .filter(|m| m.classes == 2)
        .take(6)
        .collect();
    for meta in &datasets {
        for (i, sys) in [&default as &dyn AutoMlSystem, &tuned].iter().enumerate() {
            let point = run_once(*sys, meta, &RunSpec::single_core(budget_s, 1), &bench);
            acc[i] += point.balanced_accuracy / datasets.len() as f64;
            kwh[i] += point.execution.kwh() / datasets.len() as f64;
        }
    }
    println!(
        "\nheld-out comparison over {} AMLB binary datasets:",
        datasets.len()
    );
    println!(
        "  CAML default: bal.acc {:.3}, execution {:.6} kWh/run",
        acc[0], kwh[0]
    );
    println!(
        "  CAML tuned:   bal.acc {:.3}, execution {:.6} kWh/run",
        acc[1], kwh[1]
    );
    match runs_to_amortize(outcome.development.kwh(), kwh[0], kwh[1]) {
        Some(runs) => {
            println!("\nThe tuning energy amortises after ~{runs:.0} executions (paper: 885).")
        }
        None => println!(
            "\nTuned CAML saved no execution energy in this sample — rerun with more \
             bo_iters (the paper used 300) for a stronger tuning result."
        ),
    }
}
