//! Serving AutoML models under load: the inference stage as a service.
//!
//! Trains two deployments on an AMLB registry dataset — FLAML (a single
//! cheap pipeline) and AutoGluon (a weighted multi-layer stack) — puts them
//! behind the model registry, and replays the *same* 10k-request traffic
//! trace against each through the micro-batching scheduler. The report
//! makes the paper's inference-stage finding operational: the ensemble pays
//! an order of magnitude more energy per request, visible directly in the
//! per-deployment Joules, latency percentiles, and grid carbon.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use green_automl::prelude::*;

fn main() {
    // One registry dataset, materialised at benchmark scale.
    let meta = amlb39()
        .into_iter()
        .find(|m| m.name == "blood-transfusion-service-center")
        .expect("registry dataset");
    let data = meta.materialize(&MaterializeOptions::benchmark());
    let (train, test) = train_test_split(&data, 0.34, 42);
    println!(
        "dataset: {} ({} train rows, {} features)\n",
        meta.name,
        train.n_rows(),
        train.n_features()
    );

    // Train both deployments at the one-minute budget.
    let spec = RunSpec::single_core(60.0, 42);
    let deployments = vec![
        ("FLAML", Flaml::default().fit(&train, &spec)),
        ("AutoGluon", AutoGluon::default().fit(&train, &spec)),
    ];

    // Host them in one registry; the first fetch is a cold load whose
    // memory traffic is charged to the deployment's meter.
    let mut registry = ModelRegistry::unbounded();
    for (name, run) in &deployments {
        let mb = registry.register(name, run.predictor.clone()) / 1e6;
        println!("registered {name:<10} ({mb:.2} MB artefact)");
    }

    // One shared open-loop trace: 10k requests at 500 rps, rows drawn from
    // the held-out split.
    let trace = TrafficConfig {
        rps: 500.0,
        n_requests: 10_000,
        seed: 42,
    }
    .generate(test.n_rows());
    let cfg = ServeConfig::cpu_testbed(4);
    let slo = SloPolicy::latency_only(0.05);

    println!(
        "\ntrace: {} requests at {:.0} rps, {} replicas, batch <= {} or {:.0} ms\n",
        trace.len(),
        500.0,
        cfg.replicas,
        cfg.max_batch,
        cfg.max_delay_s * 1e3
    );
    println!(
        "{:<10} {:>11} {:>12} {:>9} {:>9} {:>11} {:>9} {:>9}",
        "system", "cold_load_j", "busy_j/req", "p50_ms", "p99_ms", "mean_batch", "g_co2", "slo"
    );
    let mut reports: Vec<(&str, ServingReport)> = Vec::new();
    for (name, _) in &deployments {
        let mut loader = CostTracker::new(cfg.device, cfg.cores_per_replica);
        let predictor = registry.fetch(name, &mut loader).expect("registered");
        let report = serve(&predictor, &test, &trace, &cfg);
        let verdict = report.check(&slo);
        println!(
            "{name:<10} {:>11.4} {:>12.3e} {:>9.2} {:>9.2} {:>11.1} {:>9.4} {:>9}",
            loader.measurement().energy.total_joules(),
            report.busy_joules_per_request(),
            report.latency.p50_s * 1e3,
            report.latency.p99_s * 1e3,
            report.mean_batch_rows(),
            report.emissions(GridIntensity::GERMANY).kg_co2 * 1e3,
            if verdict.passed() { "pass" } else { "FAIL" },
        );
        reports.push((name, report));
    }

    let flaml = reports[0].1.busy_joules_per_request();
    let gluon = reports[1].1.busy_joules_per_request();
    println!(
        "\nAutoGluon's stack pays {:.1}x FLAML's marginal energy per request",
        gluon / flaml
    );
    println!("at identical traffic — the paper's O1 gap, measured at the");
    println!("serving layer instead of in a row-at-a-time loop.");
}
