//! Green report: the trillion-prediction bill (paper §3.6 / Table 4) and
//! per-country emission estimates for a deployment of your choice.
//!
//! ```sh
//! cargo run --release --example green_report
//! ```

use green_automl::prelude::*;

fn main() {
    // Benchmark three deployment styles on a mid-size task.
    let meta = amlb39()
        .into_iter()
        .find(|m| m.name == "bank-marketing")
        .expect("registry");
    let data = meta.materialize(&MaterializeOptions::benchmark());
    let (train, test) = train_test_split(&data, 0.34, 11);
    let dev = Device::xeon_gold_6132();
    let base = RunSpec::single_core(60.0, 11);

    let systems: Vec<Box<dyn AutoMlSystem>> = vec![
        Box::new(TabPfn::default()),
        Box::new(AutoGluon::default()),
        Box::new(Flaml::default()),
    ];

    println!("== Cost of one trillion predictions (paper Table 4) ==\n");
    println!(
        "{:<12} {:>14} {:>14} {:>14}",
        "system", "Energy (kWh)", "CO2 (kg, DE)", "Cost (EUR)"
    );
    let mut flaml_kwh_per_pred = 0.0;
    for system in &systems {
        let run = system.fit(&train, &base);
        let mut meter = CostTracker::new(dev, 1);
        let _ = run.predictor.predict(&test, &mut meter);
        let kwh_per_pred = meter.measurement().kwh() / test.nominal_rows();
        if system.name() == "FLAML" {
            flaml_kwh_per_pred = kwh_per_pred;
        }
        let bill = trillion_prediction_cost(system.name(), kwh_per_pred);
        println!(
            "{:<12} {:>14.0} {:>14.0} {:>14.0}",
            bill.system, bill.kwh, bill.kg_co2, bill.cost_eur
        );
    }

    println!("\n== The same FLAML bill under different grids (paper sec 2.4) ==\n");
    let yearly_kwh = flaml_kwh_per_pred * 1e12;
    println!("{:<12} {:>16} {:>14}", "grid", "kg CO2", "tonnes CO2");
    for grid in GridIntensity::all() {
        let e = EmissionsEstimate::from_kwh(yearly_kwh, *grid);
        println!(
            "{:<12} {:>16.0} {:>14.1}",
            grid.region,
            e.kg_co2,
            e.kg_co2 / 1000.0
        );
    }
    println!("\nkWh is the paper's reporting unit precisely because the CO2 story");
    println!("depends this strongly on where the electrons come from.");
}
