//! Medical diagnosis: an execution-dominated workload.
//!
//! The paper's second motivating example (§1): "predicting whether a
//! patient has a specific kind of cancer might happen far less often, and
//! thus, the focus could be on execution efficiency". Few predictions will
//! ever be made, so TabPFN's near-zero execution cost wins — exactly the
//! left side of the paper's Fig. 4 crossover.
//!
//! ```sh
//! cargo run --release --example medical_diagnosis
//! ```

use green_automl::core::amortize::{crossover_predictions, total_kwh};
use green_automl::prelude::*;

fn main() {
    // A small clinical cohort: 600 patients, 18 biomarkers, 2 outcomes.
    let mut spec = TaskSpec::new("oncology-cohort", 600, 18, 2);
    spec.missing_frac = 0.08; // lab panels are rarely complete
    spec.cluster_sep = 1.8;
    let data = spec.generate();
    let (train, test) = train_test_split(&data, 0.34, 3);

    let dev = Device::xeon_gold_6132();
    let base = RunSpec::single_core(30.0, 3);

    let systems: Vec<Box<dyn AutoMlSystem>> = vec![
        Box::new(TabPfn::default()),
        Box::new(Flaml::default()),
        Box::new(Caml::default()),
    ];

    println!("A hospital lab runs ~40 diagnoses per week (~2k/year).\n");
    println!(
        "{:<10} {:>8} {:>14} {:>14} {:>16}",
        "system", "bal.acc", "exec kWh", "kWh/pred", "kWh @ 2k preds"
    );
    let mut profile: Vec<(String, f64, f64)> = Vec::new();
    for system in &systems {
        let run = system.fit(&train, &base);
        let mut meter = CostTracker::new(dev, 1);
        let pred = run.predictor.predict(&test, &mut meter);
        let acc = balanced_accuracy(&test.labels, &pred, 2);
        let kwh_per_pred = meter.measurement().kwh() / test.nominal_rows();
        println!(
            "{:<10} {:>8.3} {:>14.6} {:>14.3e} {:>16.6}",
            system.name(),
            acc,
            run.execution.kwh(),
            kwh_per_pred,
            total_kwh(run.execution.kwh(), kwh_per_pred, 2000.0)
        );
        profile.push((system.name().to_string(), run.execution.kwh(), kwh_per_pred));
    }

    // Where does TabPFN stop being the greener choice?
    let pfn = profile
        .iter()
        .find(|(n, _, _)| n == "TabPFN")
        .expect("TabPFN ran");
    for (name, exec, inf) in profile.iter().filter(|(n, _, _)| n != "TabPFN") {
        if let Some(n) = crossover_predictions(pfn.1, pfn.2, *exec, *inf) {
            println!(
                "\nTabPFN stays cheaper than {name} up to ~{n:.0} predictions \
                 (paper Fig. 4: ~26k)"
            );
        }
    }
    println!("\nFor a rarely-queried diagnostic model, zero-search AutoML is the");
    println!("green choice — the opposite of the fraud-detection scenario.");
}
